"""Counters, gauges, and histograms for pipeline-wide accounting.

The registry is the single home for the quantities the paper's analysis
leans on — kernel launches, h2d/d2h bytes, scratch-pool hits/misses,
candidate pairs kept/dropped, shingle dedup ratios, peak host RSS and peak
device bytes — with one ``snapshot()`` producing the whole picture as a
plain dict (JSON-ready).

Like the tracer, disabled mode is allocation-free: :data:`NULL_METRICS`
hands out shared no-op instrument singletons.
"""

from __future__ import annotations

import sys
import threading


class Counter:
    """A monotonically-increasing sum (int or float increments)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def add(self, amount=1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A last-written (or maximum-tracked) value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def set_max(self, value) -> None:
        """Keep the largest value seen (peak tracking)."""
        with self._lock:
            if value > self.value:
                self.value = value


class Histogram:
    """Streaming count/sum/min/max of observed values.

    A full bucketed histogram is overkill for the pipeline's per-stage
    distributions; count/sum/min/max answer the questions the benches ask
    (how many, how big on average, how skewed) without unbounded state.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def as_dict(self) -> dict:
        with self._lock:
            mean = self.total / self.count if self.count else 0.0
            return {"count": self.count, "total": self.total,
                    "mean": mean, "min": self.min, "max": self.max}


class MetricsRegistry:
    """Create-on-first-use instrument registry with one ``snapshot()``."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def snapshot(self) -> dict:
        """Every instrument's current value as one plain dict."""
        with self._lock:
            counters = {name: c.value
                        for name, c in sorted(self._counters.items())}
            gauges = {name: g.value
                      for name, g in sorted(self._gauges.items())}
            histograms = {name: h.as_dict()
                          for name, h in sorted(self._histograms.items())}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    name = None
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None

    def add(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def set_max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def as_dict(self) -> dict:
        return {"count": 0, "total": 0.0, "mean": 0.0,
                "min": None, "max": None}


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every lookup returns the shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024
