"""The ambient observability context: one (tracer, metrics) pair per run.

Instrumented layers read the context through :func:`get_obs` instead of
threading an argument through every signature; by default it is
:data:`NULL_OBS` (no-op tracer, no-op metrics) so an unobserved run pays
one branch per instrumentation site.  Enable observation for a scope with::

    ctx = observe()                    # fresh Tracer + MetricsRegistry
    with use_obs(ctx):
        report = run_end_to_end(...)
    ctx.tracer.summary()               # run-summary JSON payload
    ctx.metrics.snapshot()             # every counter/gauge/histogram

The context is intentionally a plain module global, not a thread-local:
multistream worker threads spawned inside an observed run must see the
same tracer as the driver thread.  Process-pool workers do not inherit it —
they build their own worker tracer and ship records back with results (see
:func:`repro.sequence.homology.build_homology_graph`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class ObsContext:
    """A tracer and a metrics registry, either of which may be the null one."""

    tracer: Tracer = field(default=NULL_TRACER)
    metrics: MetricsRegistry = field(default=NULL_METRICS)

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled


NULL_OBS = ObsContext()

_current: ObsContext = NULL_OBS


def get_obs() -> ObsContext:
    """The ambient context (``NULL_OBS`` unless observation is active)."""
    return _current


def set_obs(ctx: ObsContext) -> ObsContext:
    """Install ``ctx`` as ambient; returns the previous context."""
    global _current
    previous = _current
    _current = ctx
    return previous


@contextmanager
def use_obs(ctx: ObsContext) -> Iterator[ObsContext]:
    """Scope ``ctx`` as the ambient context, restoring the old one after."""
    previous = set_obs(ctx)
    try:
        yield ctx
    finally:
        set_obs(previous)


def observe(trace: bool = True, metrics: bool = True,
            clock: Callable[[], float] | None = None) -> ObsContext:
    """A fresh context with real instruments (selectively disableable)."""
    return ObsContext(
        tracer=Tracer(clock=clock) if trace else NULL_TRACER,
        metrics=MetricsRegistry() if metrics else NULL_METRICS)
