"""Nested span tracing for the gpClust pipeline.

A :class:`Tracer` records *spans* — named, timed intervals with optional
attributes — from any layer of the pipeline: device kernel rounds, transfer
operations, homology stages, process-pool shard workers, Phase III.  Spans
carry a ``proc``/``track`` coordinate (process label, thread label) so that
concurrent work — multistream kernel rounds, the prefetch copy thread,
Smith-Waterman worker processes — renders as separate tracks in the Chrome
Trace export (:mod:`repro.obs.chrome_trace`).

Two usage styles::

    with tracer.span("pass1", c=100):          # context manager
        ...

    @traced("homology.seed_filter")            # decorator (ambient tracer)
    def candidate_pairs(...): ...

Disabled mode is a first-class citizen: :data:`NULL_TRACER` answers every
call with shared singletons and allocates nothing, so instrumented hot paths
cost one attribute check (``tracer.enabled``) plus at most a no-op method
call.  Production call sites that would build attribute dicts guard on
``tracer.enabled`` — the single branch the overhead budget allows.

Clocks are monotonic: the default source is
:func:`repro.util.timer.clock` (``time.perf_counter``, i.e.
``CLOCK_MONOTONIC`` on Linux — system-wide, so worker-process timestamps
merge directly onto the parent's timeline).  Tests inject a deterministic
fake through the same point.
"""

from __future__ import annotations

import functools
import os
import threading
from typing import Callable

from repro.util.timer import clock as _default_clock

#: Schema version of the run-summary payload (:meth:`Tracer.summary`).
#: Version 2 adds ``busy_s`` (summed span seconds, the quantity the
#: analysis layer reconciles against) while keeping every version-1 key
#: — ``wall_s``, ``n_spans``, ``spans`` — as-is, the same aliasing
#: discipline the unified ``--profile`` document uses.  The single home
#: for the number: ``run_traced_smoke.py`` and the CLI emitters stamp
#: their summary-derived documents from here instead of hardcoding it.
SUMMARY_SCHEMA_VERSION = 2


class SpanRecord:
    """One finished span: a closed interval on a (proc, track) coordinate.

    Plain data with ``__slots__`` — picklable, so worker processes ship
    their records back to the parent with shard results.
    """

    __slots__ = ("name", "start", "end", "proc", "track", "attrs")

    def __init__(self, name: str, start: float, end: float,
                 proc: str, track: str, attrs: dict | None = None) -> None:
        self.name = name
        self.start = float(start)
        self.end = float(end)
        self.proc = proc
        self.track = track
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __getstate__(self):
        return (self.name, self.start, self.end, self.proc, self.track,
                self.attrs)

    def __setstate__(self, state):
        (self.name, self.start, self.end, self.proc, self.track,
         self.attrs) = state

    def __repr__(self) -> str:
        return (f"SpanRecord({self.name!r}, {self.duration * 1e3:.3f} ms, "
                f"proc={self.proc!r}, track={self.track!r})")


class Span:
    """An open span; closes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "start", "end")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict | None) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (counts, byte totals...)."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __enter__(self) -> "Span":
        self.start = self._tracer.clock()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        self.end = tracer.clock()
        tracer._append(SpanRecord(self.name, self.start, self.end,
                                  tracer.proc, _track_name(), self.attrs))


class _NullSpan:
    """The shared do-nothing span of :class:`NullTracer`."""

    __slots__ = ()
    name = None
    start = 0.0
    end = 0.0
    duration = 0.0

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


def _track_name() -> str:
    name = threading.current_thread().name
    return "main" if name == "MainThread" else name


class Tracer:
    """Collects :class:`SpanRecord` objects; thread-safe.

    Parameters
    ----------
    clock:
        Monotonic time source; defaults to the injectable repository clock
        (:func:`repro.util.timer.clock`).
    proc:
        Process label stamped on every record — ``"main"`` in the driver,
        ``"sw-worker-<pid>"`` in alignment pool workers.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None,
                 proc: str | None = None) -> None:
        self.clock = clock or _default_clock
        self.proc = proc if proc is not None else "main"
        self.t0 = self.clock()
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Recording
    # -------------------------------------------------------------- #

    def span(self, name: str, **attrs) -> Span:
        """A context-manager span; ``attrs`` become Chrome-trace args."""
        return Span(self, name, attrs or None)

    def record(self, name: str, start: float, end: float, *,
               track: str | None = None, proc: str | None = None,
               attrs: dict | None = None) -> None:
        """Record an already-measured interval (hot paths time themselves)."""
        self._append(SpanRecord(name, start, end,
                                proc if proc is not None else self.proc,
                                track if track is not None else _track_name(),
                                attrs))

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def absorb(self, records: list[SpanRecord]) -> None:
        """Merge records drained from another tracer (e.g. a pool worker).

        Worker clocks are the same system-wide monotonic clock, so the
        records land directly on this tracer's timeline.
        """
        with self._lock:
            self._records.extend(records)

    def drain(self) -> list[SpanRecord]:
        """Remove and return all records (used by workers to ship them)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    # -------------------------------------------------------------- #
    # Views
    # -------------------------------------------------------------- #

    @property
    def records(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._records)

    def wall_s(self) -> float:
        """Seconds from the earliest span start to the latest span end."""
        records = self.records
        if not records:
            return 0.0
        return (max(r.end for r in records)
                - min(r.start for r in records))

    def summary(self) -> dict:
        """Aggregate spans by name: the run-summary JSON payload."""
        by_name: dict[str, dict] = {}
        for r in self.records:
            entry = by_name.get(r.name)
            d = r.duration
            if entry is None:
                by_name[r.name] = {"count": 1, "total_s": d,
                                   "min_s": d, "max_s": d}
            else:
                entry["count"] += 1
                entry["total_s"] += d
                entry["min_s"] = min(entry["min_s"], d)
                entry["max_s"] = max(entry["max_s"], d)
        busy_s = sum(e["total_s"] for e in by_name.values())
        for entry in by_name.values():
            for key in ("total_s", "min_s", "max_s"):
                entry[key] = round(entry[key], 6)
        return {
            "schema_version": SUMMARY_SCHEMA_VERSION,
            "wall_s": round(self.wall_s(), 6),
            "busy_s": round(busy_s, 6),
            "n_spans": sum(e["count"] for e in by_name.values()),
            "spans": {name: by_name[name] for name in sorted(by_name)},
        }


class NullTracer:
    """The disabled tracer: every operation is a no-op on shared singletons.

    ``span()`` returns the same :data:`NULL_SPAN` object every call, so
    disabled-mode instrumentation performs **zero allocations** — the
    observable contract mirroring :class:`repro.device.memory.ScratchPool`'s
    counter guarantee, asserted by the test suite.
    """

    enabled = False
    proc = "main"
    t0 = 0.0

    # NullTracer still exposes a clock so helpers like ``timed`` can
    # measure durations for their callers even when nothing is recorded.
    @property
    def clock(self) -> Callable[[], float]:
        return _default_clock

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def record(self, name: str, start: float, end: float, *,
               track: str | None = None, proc: str | None = None,
               attrs: dict | None = None) -> None:
        pass

    def absorb(self, records) -> None:
        pass

    def drain(self) -> list:
        return _EMPTY_RECORDS

    @property
    def records(self) -> list:
        return _EMPTY_RECORDS

    def wall_s(self) -> float:
        return 0.0

    def summary(self) -> dict:
        return {"schema_version": SUMMARY_SCHEMA_VERSION, "wall_s": 0.0,
                "busy_s": 0.0, "n_spans": 0, "spans": {}}


_EMPTY_RECORDS: list = []
NULL_TRACER = NullTracer()


class timed:
    """Always-measured stage timer that also records a span when tracing.

    The obs-backed replacement for ad-hoc ``t0 = perf_counter(); ...``
    stage timing: the elapsed seconds are available on ``.elapsed`` whether
    or not the tracer is enabled, and an enabled tracer additionally gets
    the span.  Used by the homology stage breakdown so
    ``HomologyTimings`` keeps its exact public shape on top of obs.
    """

    __slots__ = ("_tracer", "name", "attrs", "start", "elapsed")

    def __init__(self, tracer, name: str, **attrs) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs or None
        self.start = 0.0
        self.elapsed = 0.0

    def set(self, **attrs) -> "timed":
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "timed":
        self.start = self._tracer.clock()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        end = tracer.clock()
        self.elapsed = end - self.start
        if tracer.enabled:
            tracer.record(self.name, self.start, end, attrs=self.attrs)


def worker_tracer(enabled: bool, kind: str = "worker") -> Tracer | NullTracer:
    """A tracer for a pool worker process, labeled by its pid.

    Returns :data:`NULL_TRACER` when tracing is off so workers pay nothing.
    """
    if not enabled:
        return NULL_TRACER
    return Tracer(proc=f"{kind}-{os.getpid()}")


def traced(name: str | None = None, **attrs):
    """Decorator: run the function inside an ambient-tracer span.

    The tracer is looked up per call from :func:`repro.obs.get_obs`, so
    decorated functions are no-ops until observation is enabled.
    """

    def decorate(fn):
        span_name = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro.obs.context import get_obs

            tracer = get_obs().tracer
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
