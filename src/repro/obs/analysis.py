"""Trace analytics: critical paths, bottleneck attribution, run diffs.

PR 4 gave the pipeline raw spans and counters; this module is the layer
that *answers questions* with them, from the exported Chrome Trace
document alone (plus the metrics snapshot embedded in its ``otherData``):

* :func:`critical_path` — the longest dependency chain of span work over
  the multi-track timeline (per-device procs, multistream/prefetch
  threads, Smith-Waterman pool workers): which spans bound the run, how
  much slack (idle waiting) separates them, and which proc/track carries
  the bounding share.
* :func:`attribute` — bottleneck attribution: per-process utilization,
  the modeled-vs-wall roofline gap per kernel class (``shingle`` /
  ``alignment`` / ``aggregate`` / ``cc``), host-link contention share,
  alignment padding waste, and a ranked "top places this run lost time"
  diagnosis with machine-readable cause slugs.
* :func:`diff_traces` — per-span-name and per-process deltas between two
  traced runs ("did PR N shift time from alignment into host-link
  contention?").

Everything consumes the trace *document* (not live tracer state) so the
same analysis runs on a file produced last week, in CI, or on another
machine.  All renderers are deterministic functions of their inputs —
the ``obs diff`` golden test depends on it.

Critical-path model
-------------------
The tracer records intervals, not explicit dependency edges, so the path
is reconstructed the way profiler UIs do it: walk the timeline backward
from the last span end; at each point the *innermost* span active on any
track is a path candidate, and the candidate whose start reaches
furthest back bounds that stretch of the run.  Gaps where no track is
busy count as slack (charged to the following path entry — the work the
run sat waiting for).  The resulting path length equals wall time minus
globally-idle time, which yields the invariants the property tests
assert: ``max(single-track busy) <= path_s <= wall_s``.
"""

from __future__ import annotations

from repro.util.tables import format_table

#: Kernel-counter names (``<prefix>.kernel.<name>.*``) group into these
#: classes for the roofline view; the class of everything unlisted is
#: ``shingle`` (the Table-I device path).
KERNEL_CLASS_PREFIXES = (
    ("sw_", "alignment"),
    ("agg_", "aggregate"),
    ("cc_", "cc"),
)

#: Span names whose wall time is charged to each kernel class when
#: computing the modeled-vs-wall roofline gap.
CLASS_SPAN_PREFIXES = {
    "alignment": ("device.align_bin", "device.align"),
    "aggregate": ("device.aggregate",),
    "cc": ("device.cc.",),
    "shingle": ("device.shingle", "exec.shingle_pass",
                "device.graph_replay", "device.graph_capture"),
}

#: Transfer spans: busy time that is link occupancy, not kernel work.
TRANSFER_SPANS = ("device.upload", "device.download", "device.p2p_copy")


# ------------------------------------------------------------------ #
# Trace-document parsing
# ------------------------------------------------------------------ #

def trace_spans(doc: dict) -> list[dict]:
    """Flatten a trace document's complete events to span dicts (seconds).

    Each span is ``{"name", "proc", "track", "start", "end", "dur",
    "args"}`` with times in seconds since the trace epoch and proc/track
    resolved through the metadata events.
    """
    events = doc.get("traceEvents", [])
    proc_names: dict[int, str] = {}
    track_names: dict[tuple[int, int], str] = {}
    for e in events:
        if e.get("ph") != "M":
            continue
        if e["name"] == "process_name":
            proc_names[e["pid"]] = e["args"]["name"]
        elif e["name"] == "thread_name":
            track_names[(e["pid"], e["tid"])] = e["args"]["name"]
    spans = []
    for e in events:
        if e.get("ph") != "X":
            continue
        start = e["ts"] / 1e6
        dur = e["dur"] / 1e6
        spans.append({
            "name": e["name"],
            "proc": proc_names.get(e["pid"], str(e["pid"])),
            "track": track_names.get((e["pid"], e["tid"]), str(e["tid"])),
            "start": start,
            "end": start + dur,
            "dur": dur,
            "args": e.get("args", {}),
        })
    return spans


def leaf_spans(spans: list[dict]) -> list[dict]:
    """Innermost spans per (proc, track): the atomic work intervals.

    A span is a leaf when no other span on its track nests strictly
    inside it — ``gpclust.run`` is scaffolding around the chunk rounds
    that actually occupy the device, and counting both would double every
    busy second.
    """
    by_track: dict[tuple[str, str], list[dict]] = {}
    for s in spans:
        by_track.setdefault((s["proc"], s["track"]), []).append(s)
    leaves: list[dict] = []
    for members in by_track.values():
        members.sort(key=lambda s: (s["start"], -s["end"]))
        for i, s in enumerate(members):
            has_child = False
            for other in members[i + 1:]:
                if other["start"] >= s["end"]:
                    break
                if other is not s and (other["start"] >= s["start"]
                                       and other["end"] <= s["end"]
                                       and other["dur"] < s["dur"]):
                    has_child = True
                    break
            if not has_child:
                leaves.append(s)
    leaves.sort(key=lambda s: (s["start"], s["end"]))
    return leaves


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    """Measure of the union of ``(start, end)`` intervals."""
    total = 0.0
    cur_start = cur_end = None
    for start, end in sorted(intervals):
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_end is not None:
        total += cur_end - cur_start
    return total


def _merge_intervals(
        intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Sorted disjoint intervals covering the union of the inputs."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _overlap_seconds(a: list[tuple[float, float]],
                     b: list[tuple[float, float]]) -> float:
    """Measure of ``union(a) & union(b)`` (two-pointer sweep)."""
    a, b = _merge_intervals(a), _merge_intervals(b)
    total, i, j = 0.0, 0, 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def track_busy_seconds(spans: list[dict]) -> dict[tuple[str, str], float]:
    """Union busy seconds per (proc, track) over the *leaf* intervals."""
    leaves = leaf_spans(spans)
    busy: dict[tuple[str, str], list[tuple[float, float]]] = {}
    for s in leaves:
        busy.setdefault((s["proc"], s["track"]), []).append(
            (s["start"], s["end"]))
    return {key: _union_seconds(iv) for key, iv in busy.items()}


# ------------------------------------------------------------------ #
# Critical-path extraction
# ------------------------------------------------------------------ #

def critical_path(doc: dict) -> dict:
    """Extract the bounding chain of spans from a trace document.

    Returns::

        {"wall_s", "path_s", "idle_s", "n_entries",
         "bounding_proc", "bounding_track", "bounding_share",
         "by_proc": {proc: on_path_s},
         "entries": [{"name", "proc", "track", "start_s", "end_s",
                      "span_s", "on_path_s", "slack_s"}, ...]}

    ``entries`` are in timeline order.  ``on_path_s`` is the stretch of
    the run each entry bounds (entries never overlap; their sum is
    ``path_s``); ``span_s`` is the span's full duration; ``slack_s`` is
    the globally-idle gap immediately *before* the entry — time the run
    spent waiting for nothing observable.  ``path_s + idle_s == wall_s``.
    """
    spans = trace_spans(doc)
    leaves = leaf_spans(spans)
    if not leaves:
        return {"wall_s": 0.0, "path_s": 0.0, "idle_s": 0.0, "n_entries": 0,
                "bounding_proc": None, "bounding_track": None,
                "bounding_share": 0.0, "by_proc": {}, "entries": []}
    t_min = min(s["start"] for s in leaves)
    t_max = max(s["end"] for s in leaves)
    eps = 1e-12
    # Backward walk: repeatedly take the span active just before the
    # cursor whose start reaches furthest back, else jump the idle gap.
    entries_rev: list[dict] = []
    t = t_max
    while t > t_min + eps:
        # Active just before the cursor; strict start < t guarantees the
        # cursor moves every iteration even with exactly-equal timestamps.
        active = [s for s in leaves
                  if s["start"] < t and s["end"] >= t - eps]
        if active:
            s = min(active, key=lambda s: (s["start"], -s["dur"]))
            entries_rev.append({
                "name": s["name"], "proc": s["proc"], "track": s["track"],
                "start_s": s["start"] - t_min, "end_s": s["end"] - t_min,
                "span_s": s["dur"], "on_path_s": t - s["start"],
                "slack_s": 0.0,
            })
            t = s["start"]
        else:
            # Idle gap: every leaf that started before t also ended
            # before it (else it would be active), so the max is over a
            # non-empty set as long as t > t_min.
            prev_end = max(s["end"] for s in leaves if s["end"] < t)
            if entries_rev:
                entries_rev[-1]["slack_s"] += t - prev_end
            t = prev_end
    entries = list(reversed(entries_rev))
    path_s = sum(e["on_path_s"] for e in entries)
    idle_s = sum(e["slack_s"] for e in entries)
    by_proc: dict[str, float] = {}
    by_track: dict[tuple[str, str], float] = {}
    for e in entries:
        by_proc[e["proc"]] = by_proc.get(e["proc"], 0.0) + e["on_path_s"]
        key = (e["proc"], e["track"])
        by_track[key] = by_track.get(key, 0.0) + e["on_path_s"]
    bounding = max(by_track.items(), key=lambda kv: kv[1])
    for e in entries:
        for key in ("start_s", "end_s", "span_s", "on_path_s", "slack_s"):
            e[key] = round(e[key], 6)
    return {
        "wall_s": round(t_max - t_min, 6),
        "path_s": round(path_s, 6),
        "idle_s": round(idle_s, 6),
        "n_entries": len(entries),
        "bounding_proc": bounding[0][0],
        "bounding_track": bounding[0][1],
        "bounding_share": round(bounding[1] / path_s, 4) if path_s else 0.0,
        "by_proc": {proc: round(s, 6)
                    for proc, s in sorted(by_proc.items())},
        "entries": entries,
    }


def render_critical_path(cp: dict, top_n: int = 25) -> str:
    """The critical path as an aligned table plus the bounding footer.

    Consecutive path entries with the same span name and coordinates
    collapse into one row (count column) so a 40-chunk device loop reads
    as one line, not forty.
    """
    merged: list[dict] = []
    for e in cp["entries"]:
        if (merged and merged[-1]["name"] == e["name"]
                and merged[-1]["proc"] == e["proc"]
                and merged[-1]["track"] == e["track"]):
            m = merged[-1]
            m["count"] += 1
            m["on_path_s"] += e["on_path_s"]
            m["slack_s"] += e["slack_s"]
            m["end_s"] = e["end_s"]
        else:
            merged.append({**e, "count": 1})
    rows = [[m["name"], f"{m['proc']}/{m['track']}", str(m["count"]),
             f"{m['on_path_s'] * 1e3:.2f}", f"{m['slack_s'] * 1e3:.2f}",
             f"{m['on_path_s'] / cp['path_s']:.1%}" if cp["path_s"] else "-"]
            for m in merged]
    dropped = max(0, len(rows) - top_n)
    if dropped:
        kept = sorted(range(len(rows)),
                      key=lambda i: -merged[i]["on_path_s"])[:top_n]
        rows = [rows[i] for i in sorted(kept)]
    table = format_table(
        ["span", "proc/track", "n", "on-path ms", "slack ms", "% of path"],
        rows, title="critical path (timeline order)",
        align=["l", "l", "r", "r", "r", "r"])
    footer = (f"wall {cp['wall_s']:.4f}s = path {cp['path_s']:.4f}s "
              f"+ idle {cp['idle_s']:.4f}s; bounded by "
              f"{cp['bounding_proc']}/{cp['bounding_track']} "
              f"({cp['bounding_share']:.1%} of path)")
    if dropped:
        footer += f"\n({dropped} smaller path row(s) not shown)"
    return table + "\n" + footer


# ------------------------------------------------------------------ #
# Bottleneck attribution
# ------------------------------------------------------------------ #

def _kernel_class(kernel: str) -> str:
    for prefix, cls in KERNEL_CLASS_PREFIXES:
        if kernel.startswith(prefix):
            return cls
    return "shingle"


def _span_class(name: str) -> str | None:
    for cls, prefixes in CLASS_SPAN_PREFIXES.items():
        if any(name.startswith(p) for p in prefixes):
            return cls
    return None


def modeled_seconds_by_class(metrics: dict) -> dict[str, float]:
    """Sum ``*.kernel.<name>.modeled_s`` counters into kernel classes."""
    out: dict[str, float] = {}
    for key, value in metrics.get("counters", {}).items():
        parts = key.split(".")
        if len(parts) < 4 or parts[-3] != "kernel" or parts[-1] != "modeled_s":
            continue
        cls = _kernel_class(parts[-2])
        out[cls] = out.get(cls, 0.0) + float(value)
    return out


def class_intervals(spans: list[dict]) -> dict[str, list[tuple[float, float]]]:
    """Raw ``(start, end)`` intervals of class-attributed device spans."""
    intervals: dict[str, list[tuple[float, float]]] = {}
    for s in spans:
        cls = _span_class(s["name"])
        if cls is not None:
            intervals.setdefault(cls, []).append((s["start"], s["end"]))
    return intervals


def wall_seconds_by_class(spans: list[dict]) -> dict[str, float]:
    """Union wall seconds of class-attributed device spans, per class."""
    return {cls: _union_seconds(iv)
            for cls, iv in class_intervals(spans).items()}


def attribute(doc: dict, metrics: dict | None = None) -> dict:
    """Bottleneck attribution for one traced run.

    Combines the critical path, per-process utilization, the per-class
    modeled-vs-wall roofline gap, host-link contention, and alignment
    padding waste into one report whose headline is ``causes`` — a
    ranked list of ``{"cause", "class", "seconds", "share", "detail"}``
    dicts with machine-readable cause slugs:

    ``critical_path_idle``
        No track was busy: host-side scheduling/merge gaps.
    ``roofline_gap:<class>``
        Wall time of that kernel class's spans above its modeled device
        seconds — the execution-efficiency gap for ``shingle`` /
        ``alignment`` / ``aggregate`` / ``cc`` work.
    ``dispatch_overhead:<class>``
        The part of that class's roofline gap **not** explained by link
        traffic: gap seconds minus the transfer-span overlap with the
        class's own intervals (modeled contention lives inside the
        transfer spans, so it is subtracted with them).  What remains is
        host-side dispatch — Python replanning, per-launch accounting —
        which is exactly what launch-graph replay removes.
    ``host_link_contention``
        Modeled seconds added by PCIe oversubscription
        (``group.host_link.contended_modeled_s``).
    ``alignment_padding``
        Alignment wall seconds spent on padded (wasted) DP cells.
    ``transfer_occupancy``
        Busy seconds inside upload/download/p2p spans.

    ``reconciliation`` reports the attribution's busy total against the
    run summary embedded in the trace (when present) so consumers can
    verify the report describes the run it claims to.
    """
    metrics = metrics if metrics is not None else (
        doc.get("otherData", {}).get("metrics", {}))
    spans = trace_spans(doc)
    cp = critical_path(doc)
    wall = cp["wall_s"]

    # Per-process utilization over leaf busy time (matches the path model).
    busy_by_track = track_busy_seconds(spans)
    procs: dict[str, float] = {}
    for (proc, _track), busy in busy_by_track.items():
        procs[proc] = procs.get(proc, 0.0) + busy
    utilization = {proc: {"busy_s": round(busy, 6),
                          "utilization": round(busy / wall, 4) if wall else 0.0}
                   for proc, busy in sorted(procs.items())}

    modeled = modeled_seconds_by_class(metrics)
    cls_intervals = class_intervals(spans)
    measured = {cls: _union_seconds(iv) for cls, iv in cls_intervals.items()}
    roofline = {}
    for cls in sorted(set(modeled) | set(measured)):
        wall_cls = measured.get(cls, 0.0)
        model_cls = modeled.get(cls, 0.0)
        roofline[cls] = {
            "wall_s": round(wall_cls, 6),
            "modeled_s": round(model_cls, 9),
            "gap_s": round(max(0.0, wall_cls - model_cls), 6),
            "ratio": round(wall_cls / model_cls, 2) if model_cls else None,
        }

    gauges = metrics.get("gauges", {})
    contended_s = float(gauges.get("group.host_link.contended_modeled_s", 0.0))
    padding_waste = float(gauges.get("device.align.padding_waste", 0.0))
    align_wall = measured.get("alignment", 0.0)
    padding_s = padding_waste * align_wall
    transfer_s = _union_seconds(
        [(s["start"], s["end"]) for s in spans
         if s["name"] in TRANSFER_SPANS])

    causes = [{"cause": "critical_path_idle", "class": "host",
               "seconds": cp["idle_s"],
               "detail": "no track busy: host scheduling/merge gaps on "
                         f"the {cp['bounding_proc']} path"}]
    transfer_intervals = [(s["start"], s["end"]) for s in spans
                          if s["name"] in TRANSFER_SPANS]
    for cls, r in roofline.items():
        if r["wall_s"] or r["modeled_s"]:
            causes.append({
                "cause": f"roofline_gap:{cls}", "class": cls,
                "seconds": r["gap_s"],
                "detail": f"{cls} spans measured {r['wall_s']:.4f}s vs "
                          f"modeled {r['modeled_s']:.6f}s"})
            overlap = _overlap_seconds(transfer_intervals,
                                       cls_intervals.get(cls, []))
            dispatch_s = max(0.0, r["gap_s"] - overlap)
            if dispatch_s:
                causes.append({
                    "cause": f"dispatch_overhead:{cls}", "class": cls,
                    "seconds": dispatch_s,
                    "detail": f"{cls} gap {r['gap_s']:.4f}s minus "
                              f"{overlap:.4f}s transfer/contention overlap "
                              "= host dispatch"})
    if contended_s:
        causes.append({"cause": "host_link_contention", "class": "transfer",
                       "seconds": contended_s,
                       "detail": "modeled PCIe oversubscription "
                                 "(group.host_link.contended_modeled_s)"})
    if padding_s:
        causes.append({"cause": "alignment_padding", "class": "alignment",
                       "seconds": padding_s,
                       "detail": f"padding_waste {padding_waste:.2%} of "
                                 f"{align_wall:.4f}s alignment wall"})
    if transfer_s:
        causes.append({"cause": "transfer_occupancy", "class": "transfer",
                       "seconds": transfer_s,
                       "detail": "upload/download/p2p span occupancy"})
    causes.sort(key=lambda c: -c["seconds"])
    for rank, c in enumerate(causes, 1):
        c["rank"] = rank
        c["seconds"] = round(c["seconds"], 6)
        c["share"] = round(c["seconds"] / wall, 4) if wall else 0.0

    busy_total = sum(p["busy_s"] for p in utilization.values())
    embedded = doc.get("otherData", {}).get("spans")
    reconciliation = {"busy_s": round(busy_total, 6)}
    if embedded and embedded.get("wall_s"):
        drift = abs(wall - embedded["wall_s"]) / embedded["wall_s"]
        reconciliation.update({
            "summary_wall_s": embedded["wall_s"],
            "wall_drift_frac": round(drift, 6),
        })
    return {
        "wall_s": wall,
        "critical_path": {k: cp[k] for k in
                          ("path_s", "idle_s", "bounding_proc",
                           "bounding_track", "bounding_share", "by_proc")},
        "utilization": utilization,
        "roofline": roofline,
        "causes": causes[:5],
        "n_causes_considered": len(causes),
        "reconciliation": reconciliation,
    }


def render_attribution(report: dict) -> str:
    """The attribution report as tables: utilization, roofline, causes."""
    util_rows = [[proc, f"{u['busy_s'] * 1e3:.2f}", f"{u['utilization']:.1%}"]
                 for proc, u in report["utilization"].items()]
    out = format_table(["process", "busy ms", "utilization"], util_rows,
                       title="per-process utilization (leaf spans)",
                       align=["l", "r", "r"])
    roof_rows = [[cls, f"{r['wall_s'] * 1e3:.2f}",
                  f"{r['modeled_s'] * 1e3:.3f}", f"{r['gap_s'] * 1e3:.2f}",
                  f"{r['ratio']:.1f}x" if r["ratio"] else "-"]
                 for cls, r in report["roofline"].items()]
    if roof_rows:
        out += "\n" + format_table(
            ["kernel class", "wall ms", "modeled ms", "gap ms", "wall/model"],
            roof_rows, title="roofline: measured wall vs modeled device time",
            align=["l", "r", "r", "r", "r"])
    cause_rows = [[str(c["rank"]), c["cause"], c["class"],
                   f"{c['seconds'] * 1e3:.2f}", f"{c['share']:.1%}",
                   c["detail"]]
                  for c in report["causes"]]
    out += "\n" + format_table(
        ["#", "cause", "class", "ms", "% of wall", "detail"],
        cause_rows, title="top places this run lost time",
        align=["r", "l", "l", "r", "r", "l"])
    cp = report["critical_path"]
    out += (f"\nwall {report['wall_s']:.4f}s; critical path "
            f"{cp['path_s']:.4f}s bounded by {cp['bounding_proc']}/"
            f"{cp['bounding_track']} ({cp['bounding_share']:.1%}); "
            f"idle {cp['idle_s']:.4f}s")
    return out


# ------------------------------------------------------------------ #
# Run diffs
# ------------------------------------------------------------------ #

def diff_traces(doc_a: dict, doc_b: dict) -> dict:
    """Compare two traced runs: per-span-name and per-process deltas.

    Returns ``{"wall": {...}, "spans": [...], "procs": [...]}`` where
    each span row is ``{"name", "a_s", "b_s", "delta_s", "delta_frac",
    "a_count", "b_count"}`` sorted by ``|delta_s|`` descending (names
    present in only one run appear with 0.0 on the other side), and each
    proc row carries the same shape for per-process busy time.
    """

    def by_name(doc):
        totals: dict[str, dict] = {}
        for s in trace_spans(doc):
            entry = totals.setdefault(s["name"], {"total": 0.0, "count": 0})
            entry["total"] += s["dur"]
            entry["count"] += 1
        return totals

    def by_proc(doc):
        procs: dict[str, float] = {}
        for (proc, _t), busy in track_busy_seconds(trace_spans(doc)).items():
            procs[proc] = procs.get(proc, 0.0) + busy
        return procs

    a_names, b_names = by_name(doc_a), by_name(doc_b)
    span_rows = []
    for name in sorted(set(a_names) | set(b_names)):
        a = a_names.get(name, {"total": 0.0, "count": 0})
        b = b_names.get(name, {"total": 0.0, "count": 0})
        delta = b["total"] - a["total"]
        span_rows.append({
            "name": name, "a_s": round(a["total"], 6),
            "b_s": round(b["total"], 6), "delta_s": round(delta, 6),
            "delta_frac": round(delta / a["total"], 4) if a["total"] else None,
            "a_count": a["count"], "b_count": b["count"],
        })
    span_rows.sort(key=lambda r: (-abs(r["delta_s"]), r["name"]))

    a_procs, b_procs = by_proc(doc_a), by_proc(doc_b)
    proc_rows = []
    for proc in sorted(set(a_procs) | set(b_procs)):
        a_busy = a_procs.get(proc, 0.0)
        b_busy = b_procs.get(proc, 0.0)
        proc_rows.append({
            "proc": proc, "a_s": round(a_busy, 6), "b_s": round(b_busy, 6),
            "delta_s": round(b_busy - a_busy, 6),
        })

    def wall_of(doc):
        spans = trace_spans(doc)
        if not spans:
            return 0.0
        return (max(s["end"] for s in spans)
                - min(s["start"] for s in spans))

    wall_a, wall_b = wall_of(doc_a), wall_of(doc_b)
    return {
        "wall": {"a_s": round(wall_a, 6), "b_s": round(wall_b, 6),
                 "delta_s": round(wall_b - wall_a, 6),
                 "delta_frac": round((wall_b - wall_a) / wall_a, 4)
                               if wall_a else None},
        "spans": span_rows,
        "procs": proc_rows,
    }


def render_diff(diff: dict, top_n: int = 15) -> str:
    """The trace diff as tables (span deltas ranked by magnitude)."""
    rows = [[r["name"], str(r["a_count"]), str(r["b_count"]),
             f"{r['a_s'] * 1e3:.2f}", f"{r['b_s'] * 1e3:.2f}",
             f"{r['delta_s'] * 1e3:+.2f}",
             f"{r['delta_frac']:+.1%}" if r["delta_frac"] is not None
             else "new" if r["b_s"] else "gone"]
            for r in diff["spans"][:top_n]]
    out = format_table(
        ["span", "n(A)", "n(B)", "A ms", "B ms", "delta ms", "delta"],
        rows, title=f"top {len(rows)} span deltas (B vs A)",
        align=["l", "r", "r", "r", "r", "r", "r"])
    proc_rows = [[r["proc"], f"{r['a_s'] * 1e3:.2f}",
                  f"{r['b_s'] * 1e3:.2f}", f"{r['delta_s'] * 1e3:+.2f}"]
                 for r in diff["procs"]]
    out += "\n" + format_table(
        ["process", "A busy ms", "B busy ms", "delta ms"], proc_rows,
        title="per-process busy deltas", align=["l", "r", "r", "r"])
    w = diff["wall"]
    frac = f" ({w['delta_frac']:+.1%})" if w["delta_frac"] is not None else ""
    out += (f"\nwall A {w['a_s']:.4f}s -> B {w['b_s']:.4f}s "
            f"({w['delta_s']:+.4f}s{frac})")
    return out
