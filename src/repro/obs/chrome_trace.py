"""Chrome Trace Event export: span records -> Perfetto-loadable JSON.

The output follows the Trace Event Format's JSON-object flavor: a
``traceEvents`` list of complete (``"ph": "X"``) duration events plus
metadata (``"ph": "M"``) events naming processes and threads.  Load the
file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Coordinate mapping: each distinct span ``proc`` label becomes a trace
*process* (the driver is ``main``; Smith-Waterman pool workers are
``sw-worker-<pid>``) and each distinct ``track`` label within it becomes a
trace *thread* (the main thread, multistream kernel streams ``stream_N``,
the prefetch ``copy`` thread).  Timestamps are microseconds relative to the
tracer's epoch, so every track shares one timeline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import SpanRecord

SCHEMA_VERSION = 1


def to_chrome_trace(records: list[SpanRecord], t0: float,
                    metadata: dict | None = None) -> dict:
    """Build the Chrome Trace JSON document for ``records``.

    Parameters
    ----------
    records:
        Finished spans (any order; workers' records included).
    t0:
        The tracer epoch; event ``ts`` values are microseconds since it.
    metadata:
        Extra JSON-serializable payload stored under ``otherData`` (the
        format reserves it for exactly this) — run parameters, metric
        snapshots, the reported component breakdown.
    """
    procs: dict[str, int] = {}
    tracks: dict[tuple[str, str], int] = {}
    events: list[dict] = []

    def pid_of(proc: str) -> int:
        pid = procs.get(proc)
        if pid is None:
            # "main" gets pid 1; others follow in order of appearance.
            pid = procs[proc] = len(procs) + 1
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": proc}})
        return pid

    def tid_of(proc: str, track: str) -> tuple[int, int]:
        pid = pid_of(proc)
        key = (proc, track)
        tid = tracks.get(key)
        if tid is None:
            tid = tracks[key] = sum(1 for p, _ in tracks if p == proc) + 1
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": track}})
        return pid, tid

    # Ensure the driver process exists (and is pid 1) even for empty traces.
    pid_of("main")

    for r in sorted(records, key=lambda r: (r.proc, r.track, r.start)):
        pid, tid = tid_of(r.proc, r.track)
        event = {
            "name": r.name,
            "ph": "X",
            "ts": (r.start - t0) * 1e6,
            "dur": r.duration * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if r.attrs:
            event["args"] = {k: _jsonable(v) for k, v in r.attrs.items()}
        events.append(event)

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema_version": SCHEMA_VERSION,
                      "exporter": "repro.obs"},
    }
    if metadata:
        doc["otherData"].update(metadata)
    return doc


def _jsonable(value):
    """Coerce numpy scalars and other oddballs to JSON-native types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def write_chrome_trace(path: str | Path, records: list[SpanRecord],
                       t0: float, metadata: dict | None = None) -> dict:
    """Export and write the trace document; returns it."""
    doc = to_chrome_trace(records, t0, metadata=metadata)
    Path(path).write_text(json.dumps(doc) + "\n")
    return doc


def load_trace(path: str | Path) -> dict:
    """Read a trace document written by :func:`write_chrome_trace`."""
    doc = json.loads(Path(path).read_text())
    validate_chrome_trace(doc)
    return doc


def validate_chrome_trace(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed trace document.

    Checks the invariants Perfetto's importer relies on: a ``traceEvents``
    list whose members carry the required per-phase fields with sane types
    and non-negative times, and integer pid/tid coordinates that metadata
    events have named.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document missing 'traceEvents' list")
    named_pids: set[int] = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: event must be an object")
        ph = event.get("ph")
        if ph not in ("X", "M"):
            raise ValueError(f"{where}: unsupported phase {ph!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing event name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"{where}: {field} must be an integer")
        if ph == "M":
            if event["name"] not in ("process_name", "thread_name"):
                raise ValueError(
                    f"{where}: unknown metadata event {event['name']!r}")
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise ValueError(f"{where}: metadata event missing args.name")
            if event["name"] == "process_name":
                named_pids.add(event["pid"])
            continue
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)):
                raise ValueError(f"{where}: {field} must be a number")
        if event["dur"] < 0:
            raise ValueError(f"{where}: negative duration")
        if event["pid"] not in named_pids:
            raise ValueError(
                f"{where}: pid {event['pid']} has no process_name metadata")
