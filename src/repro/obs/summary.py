"""Human-readable top-N report over a Chrome trace file.

``python -m repro obs summary trace.json`` answers "where did this run
spend its time" from the exported trace alone: spans aggregate by name
across every process/thread track, ranked by total busy seconds, with the
track count and per-call statistics alongside.  Because concurrent tracks
each accumulate their own busy time, the column total bounds — and may
exceed — the wall-clock window, exactly like per-stream profiler output.
"""

from __future__ import annotations

from repro.util.tables import format_table


def summarize_trace(doc: dict, top_n: int = 15) -> dict:
    """Aggregate a trace document's complete events by span name.

    Returns ``{"wall_s", "busy_s", "n_spans", "n_tracks", "rows", "procs"}``
    where ``rows`` is the top-``top_n`` list of per-name dicts sorted by
    total duration descending and ``procs`` aggregates the same events per
    process track (the per-device utilization view of a multi-device run:
    each ``DeviceGroup`` member traces onto its own ``device{i}`` process).
    """
    all_events = doc.get("traceEvents", [])
    events = [e for e in all_events if e.get("ph") == "X"]
    proc_names = {e["pid"]: e.get("args", {}).get("name", "")
                  for e in all_events
                  if e.get("ph") == "M" and e.get("name") == "process_name"}
    by_name: dict[str, dict] = {}
    by_proc: dict[int, dict] = {}
    tracks: set[tuple[int, int]] = set()
    t_min, t_max = float("inf"), float("-inf")
    for e in events:
        dur_s = e["dur"] / 1e6
        t_min = min(t_min, e["ts"])
        t_max = max(t_max, e["ts"] + e["dur"])
        tracks.add((e["pid"], e["tid"]))
        entry = by_name.get(e["name"])
        if entry is None:
            by_name[e["name"]] = {"name": e["name"], "count": 1,
                                  "total_s": dur_s, "min_s": dur_s,
                                  "max_s": dur_s}
        else:
            entry["count"] += 1
            entry["total_s"] += dur_s
            entry["min_s"] = min(entry["min_s"], dur_s)
            entry["max_s"] = max(entry["max_s"], dur_s)
        # p2p fabric copies (``data_p2p`` bucket) are busy time on the
        # destination device's process: broken out so the multi-device
        # utilization table shows link occupancy instead of idle.
        is_p2p = e["name"] == "device.p2p_copy"
        pentry = by_proc.get(e["pid"])
        if pentry is None:
            name = proc_names.get(e["pid"], str(e["pid"]))
            by_proc[e["pid"]] = {"proc": name, "count": 1, "busy_s": dur_s,
                                 "p2p_s": dur_s if is_p2p else 0.0,
                                 "tracks": {e["tid"]}}
        else:
            pentry["count"] += 1
            pentry["busy_s"] += dur_s
            if is_p2p:
                pentry["p2p_s"] += dur_s
            pentry["tracks"].add(e["tid"])

    rows = sorted(by_name.values(), key=lambda r: -r["total_s"])
    wall_s = (t_max - t_min) / 1e6 if events else 0.0
    procs = [{"proc": p["proc"], "count": p["count"],
              "busy_s": p["busy_s"], "p2p_s": p["p2p_s"],
              "n_tracks": len(p["tracks"]),
              "utilization": p["busy_s"] / wall_s if wall_s > 0 else 0.0}
             for p in sorted(by_proc.values(), key=lambda p: p["proc"])]
    return {
        "wall_s": wall_s,
        "busy_s": sum(r["total_s"] for r in rows),
        "n_spans": len(events),
        "n_tracks": len(tracks),
        "rows": rows[:top_n],
        "procs": procs,
    }


def render_summary(doc: dict, top_n: int = 15) -> str:
    """The rendered top-N table plus the wall/busy footer."""
    agg = summarize_trace(doc, top_n=top_n)
    wall = agg["wall_s"]
    table_rows = [
        [r["name"], str(r["count"]),
         f"{r['total_s'] * 1e3:.2f}",
         f"{r['total_s'] / r['count'] * 1e3:.3f}",
         f"{r['max_s'] * 1e3:.3f}",
         f"{r['total_s'] / wall:.1%}" if wall > 0 else "-"]
        for r in agg["rows"]
    ]
    table = format_table(
        ["span", "count", "total ms", "mean ms", "max ms", "% of wall"],
        table_rows,
        title=f"top {len(table_rows)} spans by total time",
        align=["l", "r", "r", "r", "r", "r"])
    footer = (f"wall {wall:.4f}s across {agg['n_tracks']} track(s); "
              f"busy {agg['busy_s']:.4f}s over {agg['n_spans']} spans "
              "(busy may exceed wall under concurrency)")
    out = table + "\n" + footer
    if len(agg["procs"]) > 1:
        # More than one process track (device-group members, pool workers):
        # show where each spent its time relative to the run's wall clock.
        proc_rows = [
            [p["proc"], str(p["n_tracks"]), str(p["count"]),
             f"{p['busy_s'] * 1e3:.2f}", f"{p['p2p_s'] * 1e3:.2f}",
             f"{p['utilization']:.1%}"]
            for p in agg["procs"]
        ]
        out += "\n" + format_table(
            ["process", "tracks", "spans", "busy ms", "p2p ms",
             "utilization"],
            proc_rows,
            title="per-process utilization",
            align=["l", "r", "r", "r", "r", "r"])
    return out
