"""The cross-run performance ledger and the shared bench-diff machinery.

Two halves, both consumed by the CI scripts and the ``repro obs`` CLI:

**Row comparison** (:func:`compare_rows`, :func:`render_deltas`, the
metric-direction/tag/wall-metric rules) — the one implementation of
"did this bench row regress against that reference row", previously
private to ``scripts/compare_bench.py``.  ``compare_bench.py`` and
``check_perf_guard.py`` are now thin CLIs over these functions.

**The ledger** — an append-only JSONL store under
``benchmarks/results/ledger/`` that every bench writer and
``run_traced_smoke.py`` appends to.  One line per (benchmark row,
config fingerprint) observation::

    {"schema_version": 1, "ts": ..., "bench": "table1_runtime",
     "row": "2m", "fingerprint": "9f2c04d1e7ab", "host_cores": 4,
     "config": {...}, "metrics": {"total_s": 1.13, ...}}

The fingerprint hashes the *configuration* (scale, devices, backends —
whatever the writer says identifies the setup), so trajectories only
chain together measurements of the same thing; ``host_cores`` further
partitions wall-clock metrics, which are noise across machines.  Drift
detection is an EWMA with a relative tolerance band: the latest value is
flagged when it leaves ``ewma(prior) * (1 +/- tolerance)``, which
catches slow creep that any single pairwise guard under the same
tolerance would wave through.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

from repro.util.tables import format_table

#: Ledger entry schema.
LEDGER_SCHEMA_VERSION = 1

#: Default ledger location, relative to the repository root.
LEDGER_DIRNAME = Path("benchmarks") / "results" / "ledger"

#: Valid direction suffixes of a ``"name[:direction]"`` metric spec.
DIRECTIONS = ("lower", "higher")

#: Row keys that describe the measuring machine, not the measurement —
#: never compared as metrics.
TAG_KEYS = frozenset({"host_cores"})

#: Metrics that measure wall-clock time (or wall-clock-derived speedups),
#: meaningless to compare across machines with different core counts.
WALL_METRICS = frozenset({"total_s", "cpu_s", "gpu_s", "alignment_s",
                          "overhead_frac", "traced_off_s", "traced_on_s",
                          "overhead_pct"})

#: EWMA smoothing factor for drift detection (weight of the newest prior).
EWMA_ALPHA = 0.3


def is_wall_metric(name: str) -> bool:
    """Whether ``name`` is wall-clock-derived (vs modeled/counted)."""
    return (name in WALL_METRICS or name.startswith("wall_")
            or name.endswith("_wall"))


def parse_metric_spec(spec: str) -> tuple[str, str]:
    """Split ``"name"`` / ``"name:higher"`` into ``(name, direction)``."""
    name, sep, direction = spec.partition(":")
    if not sep:
        return name, "lower"
    if direction not in DIRECTIONS:
        raise ValueError(
            f"bad metric spec {spec!r}: direction must be one of "
            f"{DIRECTIONS}")
    return name, direction


def numeric_metrics(row: dict) -> list[str]:
    """Comparable metric keys of a bench row (numbers minus tags)."""
    return [k for k, v in row.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
            and k not in TAG_KEYS]


def host_cores_differ(ref: dict, got: dict) -> bool:
    """True when both rows carry ``host_cores`` and they disagree."""
    return ("host_cores" in ref and "host_cores" in got
            and ref["host_cores"] != got["host_cores"])


def compare_rows(ref_rows: dict, got_rows: dict, tolerance: float,
                 metrics: list[tuple[str, str]] | None = None
                 ) -> tuple[list[dict], list[str]]:
    """Compare measured rows against reference rows.

    Returns ``(deltas, failures)``: one delta dict per (row, metric)
    comparison — ``{"row", "metric", "direction", "ref", "got",
    "delta_frac", "verdict"}`` — and a list of human-readable failure
    messages (empty == pass).  A reference row or metric missing from the
    measured side is itself a failure: silently-dropped coverage must not
    read as a pass.

    When a reference row and its measured counterpart both carry a
    ``host_cores`` tag and the values differ, wall-clock metrics (see
    :data:`WALL_METRICS`) get a ``SKIP`` verdict instead of pass/fail —
    they were measured on different machines.  Modeled and counted metrics
    still compare normally.
    """
    deltas: list[dict] = []
    failures: list[str] = []
    for name, ref in sorted(ref_rows.items()):
        if name not in got_rows:
            failures.append(f"{name}: missing from measured results")
            continue
        got = got_rows[name]
        skip_wall = host_cores_differ(ref, got)
        row_metrics = metrics or [(m, "lower") for m in numeric_metrics(ref)]
        for metric, direction in row_metrics:
            if metric not in ref:
                continue        # reference does not guard this metric here
            if metric not in got:
                failures.append(f"{name}: metric {metric!r} missing from "
                                f"measured results")
                continue
            ref_val = float(ref[metric])
            got_val = float(got[metric])
            delta_frac = (got_val / ref_val - 1.0) if ref_val else 0.0
            if skip_wall and is_wall_metric(metric):
                deltas.append({"row": name, "metric": metric,
                               "direction": direction, "ref": ref_val,
                               "got": got_val, "delta_frac": delta_frac,
                               "verdict": "SKIP"})
                continue
            if direction == "higher":
                regressed = got_val < ref_val * (1.0 - tolerance)
            else:
                regressed = got_val > ref_val * (1.0 + tolerance)
            verdict = "REGRESSION" if regressed else "OK"
            deltas.append({"row": name, "metric": metric,
                           "direction": direction, "ref": ref_val,
                           "got": got_val, "delta_frac": delta_frac,
                           "verdict": verdict})
            if regressed:
                failures.append(
                    f"{name}: {metric} {got_val:.4f} vs reference "
                    f"{ref_val:.4f} ({delta_frac:+.1%}, "
                    f"{direction}-is-better, tolerance {tolerance:.0%})")
    return deltas, failures


def render_deltas(deltas: list[dict], tolerance: float) -> str:
    """The per-row/per-metric delta table as aligned text."""
    headers = ["row", "metric", "dir", "reference", "measured", "delta",
               "verdict"]
    rows = [[d["row"], d["metric"], d["direction"], f"{d['ref']:.4f}",
             f"{d['got']:.4f}", f"{d['delta_frac']:+.1%}", d["verdict"]]
            for d in deltas]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in rows]
    lines.append(f"(tolerance {tolerance:.0%}; improvements never fail)")
    return "\n".join(lines)


def skipped_wall_note(ref_rows: dict, got_rows: dict,
                      deltas: list[dict]) -> str | None:
    """One-line "why did the guard skip wall metrics" note, or ``None``.

    CI logs must show *why* a guard passed: when ``host_cores`` differ the
    wall comparisons silently turn into SKIP verdicts, and without this
    line a green check reads as "wall time guarded" when it was not.
    """
    skipped = sum(1 for d in deltas if d["verdict"] == "SKIP")
    if not skipped:
        return None
    pairs = {(ref.get("host_cores"), got_rows[name].get("host_cores"))
             for name, ref in ref_rows.items()
             if name in got_rows and host_cores_differ(ref, got_rows[name])}
    detail = ", ".join(f"{a} vs {b}" for a, b in sorted(pairs))
    return (f"skipped {skipped} wall metric(s): host_cores differ "
            f"({detail}) — measured on a different machine than the "
            "reference")


def rows_from(doc: dict, key: str) -> dict:
    """The named row mapping of a bench document."""
    if key not in doc:
        raise KeyError(
            f"key {key!r} not in document (has: {sorted(doc)})")
    rows = doc[key]
    if not isinstance(rows, dict):
        raise TypeError(f"key {key!r} is not a row mapping")
    return rows


# ------------------------------------------------------------------ #
# The ledger store
# ------------------------------------------------------------------ #

def config_fingerprint(config: dict) -> str:
    """Stable 12-hex-digit hash of a JSON-able configuration mapping."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def append_ledger(ledger_dir: str | Path, bench: str, rows: dict,
                  config: dict, *, host_cores: int | None = None,
                  ts: float | None = None) -> list[dict]:
    """Append one observation per row to ``<ledger_dir>/<bench>.jsonl``.

    ``rows`` is a bench-document row mapping (``{"2m": {"total_s": ...}}``);
    only numeric metrics are stored.  A row's own ``host_cores`` tag wins
    over the argument.  Returns the entries written.
    """
    ledger_dir = Path(ledger_dir)
    ledger_dir.mkdir(parents=True, exist_ok=True)
    fingerprint = config_fingerprint(config)
    ts = time.time() if ts is None else ts
    entries = []
    for row_name, row in sorted(rows.items()):
        if not isinstance(row, dict):
            continue
        metrics = {k: row[k] for k in numeric_metrics(row)}
        if not metrics:
            continue
        entries.append({
            "schema_version": LEDGER_SCHEMA_VERSION,
            "ts": round(ts, 3),
            "bench": bench,
            "row": row_name,
            "fingerprint": fingerprint,
            "host_cores": row.get("host_cores", host_cores),
            "config": config,
            "metrics": metrics,
        })
    path = ledger_dir / f"{bench}.jsonl"
    with path.open("a") as fh:
        for entry in entries:
            fh.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
    return entries


def load_ledger(ledger_dir: str | Path,
                bench: str | None = None) -> list[dict]:
    """All ledger entries (optionally of one bench), oldest first.

    Unparseable lines are skipped with their position preserved in the
    returned entries' order — an interrupted CI append must not poison
    every later report.
    """
    ledger_dir = Path(ledger_dir)
    if not ledger_dir.is_dir():
        return []
    paths = ([ledger_dir / f"{bench}.jsonl"] if bench
             else sorted(ledger_dir.glob("*.jsonl")))
    entries: list[dict] = []
    for path in paths:
        if not path.is_file():
            continue
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "metrics" in entry:
                entries.append(entry)
    entries.sort(key=lambda e: e.get("ts", 0.0))
    return entries


def ewma(values: list[float], alpha: float = EWMA_ALPHA) -> float:
    """Exponentially-weighted moving average, newest value weighted last."""
    if not values:
        raise ValueError("ewma of an empty series")
    acc = values[0]
    for v in values[1:]:
        acc = alpha * v + (1.0 - alpha) * acc
    return acc


def detect_drift(values: list[float], tolerance: float,
                 alpha: float = EWMA_ALPHA) -> dict:
    """Latest value vs the EWMA of its priors, with a tolerance band.

    Returns ``{"latest", "ewma", "delta_frac", "band", "verdict"}``;
    verdict is ``OK`` / ``DRIFT`` / ``NEW`` (fewer than two points).
    The comparison is symmetric — a metric falling *below* the band is
    also drift (a too-good-to-be-true wall time usually means the bench
    stopped measuring what it used to).
    """
    if len(values) < 2:
        return {"latest": values[-1] if values else None, "ewma": None,
                "delta_frac": None, "band": tolerance, "verdict": "NEW"}
    baseline = ewma(values[:-1], alpha)
    latest = values[-1]
    delta_frac = (latest / baseline - 1.0) if baseline else 0.0
    verdict = "DRIFT" if abs(delta_frac) > tolerance else "OK"
    return {"latest": latest, "ewma": baseline,
            "delta_frac": delta_frac, "band": tolerance, "verdict": verdict}


def ledger_report(entries: list[dict], tolerance: float = 0.15) -> list[dict]:
    """Per-(bench, row, fingerprint, metric) trajectory rows with drift.

    Wall-clock metrics restrict their series to entries measured with the
    same ``host_cores`` as the latest observation; modeled and counted
    metrics chain across machines.
    """
    groups: dict[tuple, list[dict]] = {}
    for e in entries:
        key = (e["bench"], e["row"], e.get("fingerprint"))
        groups.setdefault(key, []).append(e)
    report = []
    for (bench, row, fingerprint), series in sorted(groups.items()):
        metric_names = sorted({m for e in series for m in e["metrics"]})
        latest_cores = series[-1].get("host_cores")
        for metric in metric_names:
            points = [e for e in series if metric in e["metrics"]]
            if is_wall_metric(metric):
                points = [e for e in points
                          if e.get("host_cores") == latest_cores]
            values = [float(e["metrics"][metric]) for e in points]
            if not values:
                continue
            drift = detect_drift(values, tolerance)
            report.append({
                "bench": bench, "row": row, "fingerprint": fingerprint,
                "metric": metric, "n": len(values),
                "first": values[0], "latest": values[-1],
                "ewma": drift["ewma"], "delta_frac": drift["delta_frac"],
                "verdict": drift["verdict"],
            })
    return report


def render_ledger_report(report: list[dict], tolerance: float = 0.15,
                         drift_only: bool = False) -> str:
    """The trajectory table: one row per tracked metric series."""
    shown = [r for r in report if not drift_only or r["verdict"] == "DRIFT"]
    rows = [[r["bench"], r["row"], r["metric"], str(r["n"]),
             f"{r['first']:.4f}",
             f"{r['ewma']:.4f}" if r["ewma"] is not None else "-",
             f"{r['latest']:.4f}",
             f"{r['delta_frac']:+.1%}" if r["delta_frac"] is not None
             else "-",
             r["verdict"]]
            for r in shown]
    table = format_table(
        ["bench", "row", "metric", "n", "first", "ewma", "latest",
         "vs ewma", "verdict"],
        rows, title="performance ledger trajectories",
        align=["l", "l", "l", "r", "r", "r", "r", "r", "l"])
    drifted = sum(1 for r in report if r["verdict"] == "DRIFT")
    footer = (f"{len(report)} tracked series, {drifted} drifted "
              f"(EWMA band +/-{tolerance:.0%})")
    return table + "\n" + footer
