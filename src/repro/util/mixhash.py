"""64-bit mixing hash (splitmix64 finalizer) — scalar and vectorized forms.

Shingles are s-element sets that must be compared across vertices; the paper
assumes each shingle "is in an integer representation obtained using a hash
function".  We fold the s constituent ids (in min-hash order, which is
deterministic per trial) plus a per-trial salt into one 64-bit fingerprint.

The scalar and vectorized implementations are bit-for-bit identical — the
serial reference path and the device path must generate identical shingle
fingerprints for the same hash seeds, and the test suite asserts this.
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15
_MUL1 = 0xBF58476D1CE4E5B9
_MUL2 = 0x94D049BB133111EB


def mix64(x: int) -> int:
    """Scalar splitmix64 finalizer."""
    x = (x + _GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MUL1) & _MASK64
    x = ((x ^ (x >> 27)) * _MUL2) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def mix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(_GAMMA)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_MUL1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_MUL2)
        x ^= x >> np.uint64(31)
    return x


def fold_fingerprint(ids, salt: int) -> int:
    """Scalar fingerprint of an ordered id tuple with a salt.

    ``fp = mix64(salt); for id in ids: fp = mix64(fp ^ mix64(id))``
    """
    fp = mix64(salt & _MASK64)
    for i in ids:
        fp = mix64(fp ^ mix64(int(i)))
    return fp


def fold_fingerprint_array(ids: np.ndarray, salts: np.ndarray) -> np.ndarray:
    """Vectorized fingerprint folding.

    Parameters
    ----------
    ids:
        uint64 array of shape ``(..., s)``; the last axis is folded.
    salts:
        uint64 array broadcastable to ``ids.shape[:-1]``.

    Returns
    -------
    np.ndarray
        uint64 fingerprints of shape ``ids.shape[:-1]``.
    """
    ids = np.asarray(ids, dtype=np.uint64)
    fp = mix64_array(np.broadcast_to(np.asarray(salts, dtype=np.uint64),
                                     ids.shape[:-1]).copy())
    for k in range(ids.shape[-1]):
        fp = mix64_array(fp ^ mix64_array(ids[..., k]))
    return fp


def trial_salt(pass_id: int, trial: int) -> int:
    """Deterministic salt so shingles from different trials/passes never mix.

    The paper sorts shingles "once for each random trial (so that shingles
    from different trials do not get mixed)"; salting the fingerprint by
    (pass, trial) achieves the same separation.
    """
    return mix64((pass_id << 32) ^ trial)
