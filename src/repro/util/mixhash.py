"""64-bit mixing hash (splitmix64 finalizer) — scalar and vectorized forms.

Shingles are s-element sets that must be compared across vertices; the paper
assumes each shingle "is in an integer representation obtained using a hash
function".  We fold the s constituent ids (in min-hash order, which is
deterministic per trial) plus a per-trial salt into one 64-bit fingerprint.

The scalar and vectorized implementations are bit-for-bit identical — the
serial reference path and the device path must generate identical shingle
fingerprints for the same hash seeds, and the test suite asserts this.
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15
_MUL1 = 0xBF58476D1CE4E5B9
_MUL2 = 0x94D049BB133111EB


def mix64(x: int) -> int:
    """Scalar splitmix64 finalizer."""
    x = (x + _GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MUL1) & _MASK64
    x = ((x ^ (x >> 27)) * _MUL2) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def mix64_inplace(x: np.ndarray, tmp: np.ndarray) -> None:
    """Splitmix64 finalizer applied in place on ``x``.

    ``tmp`` must be a uint64 array of the same shape; it holds the shifted
    intermediate so the whole finalizer runs with zero allocations.  Bit-
    identical to :func:`mix64_array` (same ops, mod 2**64 wraparound).
    """
    with np.errstate(over="ignore"):
        x += np.uint64(_GAMMA)
        np.right_shift(x, np.uint64(30), out=tmp)
        x ^= tmp
        x *= np.uint64(_MUL1)
        np.right_shift(x, np.uint64(27), out=tmp)
        x ^= tmp
        x *= np.uint64(_MUL2)
        np.right_shift(x, np.uint64(31), out=tmp)
        x ^= tmp


def mix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    x = x.astype(np.uint64, copy=True)
    mix64_inplace(x, np.empty_like(x))
    return x


def fold_fingerprint(ids, salt: int) -> int:
    """Scalar fingerprint of an ordered id tuple with a salt.

    ``fp = mix64(salt); for id in ids: fp = mix64(fp ^ mix64(id))``
    """
    fp = mix64(salt & _MASK64)
    for i in ids:
        fp = mix64(fp ^ mix64(int(i)))
    return fp


def fold_fingerprint_array(ids: np.ndarray, salts: np.ndarray,
                           scratch=None, out: np.ndarray | None = None) -> np.ndarray:
    """Vectorized fingerprint folding.

    Parameters
    ----------
    ids:
        uint64 array of shape ``(..., s)``; the last axis is folded.
    salts:
        uint64 array broadcastable to ``ids.shape[:-1]``.
    scratch:
        Optional :class:`repro.device.memory.ScratchPool`; with it (and an
        ``out`` destination) the fold performs zero fresh allocations.
    out:
        Optional uint64 destination of shape ``ids.shape[:-1]``.

    Returns
    -------
    np.ndarray
        uint64 fingerprints of shape ``ids.shape[:-1]``.
    """
    ids = np.asarray(ids, dtype=np.uint64)
    shape = ids.shape[:-1]
    fp = out if out is not None else np.empty(shape, dtype=np.uint64)
    if scratch is not None:
        tmp = scratch.take(shape, np.uint64)
        idm = scratch.take(shape, np.uint64)
    else:
        tmp = np.empty(shape, dtype=np.uint64)
        idm = np.empty(shape, dtype=np.uint64)
    np.copyto(fp, np.broadcast_to(np.asarray(salts, dtype=np.uint64), shape))
    mix64_inplace(fp, tmp)
    for k in range(ids.shape[-1]):
        np.copyto(idm, ids[..., k])
        mix64_inplace(idm, tmp)
        fp ^= idm
        mix64_inplace(fp, tmp)
    if scratch is not None:
        scratch.give(tmp, idm)
    return fp


def trial_salt(pass_id: int, trial: int) -> int:
    """Deterministic salt so shingles from different trials/passes never mix.

    The paper sorts shingles "once for each random trial (so that shingles
    from different trials do not get mixed)"; salting the fingerprint by
    (pass, trial) achieves the same separation.
    """
    return mix64((pass_id << 32) ^ trial)
