"""Wall-clock timing primitives used by the gpClust component breakdown.

Table I of the paper reports per-component runtimes: CPU, GPU, host-to-device
transfer (``Data c->g``), device-to-host transfer (``Data g->c``) and Disk I/O.
:class:`TimeBreakdown` accumulates named buckets so the pipeline can report
the same columns.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

# ---------------------------------------------------------------------- #
# Clock injection
# ---------------------------------------------------------------------- #
#
# Every timing primitive in the repository reads the clock through
# :func:`clock` rather than calling ``time.perf_counter`` directly (and
# never ``time.time``, whose wall-clock jumps would corrupt durations).
# Tests inject a deterministic fake via :func:`set_clock`/:func:`fake_clock`
# so timing assertions stop depending on scheduler noise.

_CLOCK: Callable[[], float] = time.perf_counter


def clock() -> float:
    """Monotonic seconds from the currently-installed clock source."""
    return _CLOCK()


def set_clock(fn: Callable[[], float]) -> Callable[[], float]:
    """Install a clock source; returns the previous one (for restoration)."""
    global _CLOCK
    previous = _CLOCK
    _CLOCK = fn
    return previous


@contextmanager
def fake_clock(fn: Callable[[], float]) -> Iterator[Callable[[], float]]:
    """Temporarily install ``fn`` as the clock source.

    >>> ticks = iter(range(100))
    >>> with fake_clock(lambda: float(next(ticks))):
    ...     sw = Stopwatch()
    ...     with sw:
    ...         pass
    >>> sw.elapsed
    1.0
    """
    previous = set_clock(fn)
    try:
        yield fn
    finally:
        set_clock(previous)


class Stopwatch:
    """A resumable wall-clock stopwatch.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = clock()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        delta = clock() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# Canonical bucket names matching Table I's columns.
BUCKET_CPU = "cpu"
BUCKET_GPU = "gpu"
BUCKET_C2G = "data_c2g"
BUCKET_G2C = "data_g2c"
BUCKET_IO = "disk_io"

#: Device-to-device (peer) transfer seconds in a multi-device group.  Not a
#: Table-I column — the paper's single K20 has no peer — so like
#: ``serial_shingling`` it only shows up in ``total`` via the bucket sum.
BUCKET_P2P = "data_p2p"

TABLE1_BUCKETS = (BUCKET_CPU, BUCKET_GPU, BUCKET_C2G, BUCKET_G2C, BUCKET_IO)


@dataclass
class TimeBreakdown:
    """Accumulates wall-clock seconds into named buckets.

    A separate ``modeled`` dict accumulates *simulated* device seconds from
    the transfer/kernel cost models, kept apart from measured wall time so
    benchmark reports can show both honestly.

    Accumulation is thread-safe: multi-stream execution charges buckets from
    worker threads.  Under concurrent execution the buckets record *busy*
    seconds per component, so their sum bounds — and may exceed — the
    elapsed wall time, exactly like per-stream profiler output on real
    hardware.
    """

    measured: dict[str, float] = field(default_factory=dict)
    modeled: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def add(self, bucket: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration {seconds!r} for bucket {bucket!r}")
        with self._lock:
            self.measured[bucket] = self.measured.get(bucket, 0.0) + seconds

    def add_modeled(self, bucket: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration {seconds!r} for bucket {bucket!r}")
        with self._lock:
            self.modeled[bucket] = self.modeled.get(bucket, 0.0) + seconds

    @contextmanager
    def timing(self, bucket: str) -> Iterator[None]:
        """Context manager that adds the elapsed wall time to ``bucket``."""
        t0 = clock()
        try:
            yield
        finally:
            self.add(bucket, clock() - t0)

    def get(self, bucket: str) -> float:
        return self.measured.get(bucket, 0.0)

    def get_modeled(self, bucket: str) -> float:
        return self.modeled.get(bucket, 0.0)

    @property
    def total(self) -> float:
        return sum(self.measured.values())

    def merge(self, other: "TimeBreakdown") -> None:
        """Fold another breakdown's buckets into this one."""
        for bucket, seconds in other.measured.items():
            self.add(bucket, seconds)
        for bucket, seconds in other.modeled.items():
            self.add_modeled(bucket, seconds)

    def as_row(self) -> dict[str, float]:
        """Measured seconds for the five Table-I buckets plus the total."""
        row = {bucket: self.get(bucket) for bucket in TABLE1_BUCKETS}
        row["total"] = self.total
        return row
