"""Seeded randomness helpers.

Everything random in this reproduction flows through
:class:`numpy.random.Generator` objects seeded from a single experiment seed,
so every pipeline run is exactly reproducible.  The Shingling heuristic's
random trials are parameterized by hash pairs ``<A_j, B_j>`` (Section III-B of
the paper); :func:`make_hash_pairs` draws a fixed set of ``c`` such pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.primes import DEFAULT_PRIME


@dataclass(frozen=True)
class HashPair:
    """One min-wise hash function ``h(v) = (a*v + b) mod prime``.

    ``a`` is kept nonzero modulo ``prime`` so that ``h`` is a bijection on
    ``[0, prime)`` — i.e. a genuine random permutation of vertex ids, which is
    what gives the min-wise independence guarantee of Broder et al.
    """

    a: int
    b: int
    prime: int = DEFAULT_PRIME

    def __post_init__(self) -> None:
        if not (0 < self.a < self.prime):
            raise ValueError(f"a must be in (0, prime); got a={self.a}")
        if not (0 <= self.b < self.prime):
            raise ValueError(f"b must be in [0, prime); got b={self.b}")

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Vectorized ``(a*v + b) mod prime`` over an integer array."""
        v = np.asarray(values, dtype=np.uint64)
        return (np.uint64(self.a) * v + np.uint64(self.b)) % np.uint64(self.prime)

    def apply_scalar(self, value: int) -> int:
        """Scalar hash, used by the pure-Python serial reference path."""
        return (self.a * value + self.b) % self.prime


def make_hash_pairs(c: int, rng: np.random.Generator, prime: int = DEFAULT_PRIME) -> list[HashPair]:
    """Draw ``c`` independent hash pairs ``<A_j, B_j>``, j in [1, c].

    The paper fixes one set of pairs per shingling pass so that every
    adjacency list sees the same ``c`` permutations.
    """
    if c < 1:
        raise ValueError(f"c must be >= 1, got {c}")
    a_vals = rng.integers(1, prime, size=c, dtype=np.int64)
    b_vals = rng.integers(0, prime, size=c, dtype=np.int64)
    return [HashPair(int(a), int(b), prime) for a, b in zip(a_vals, b_vals)]


def hash_pair_arrays(pairs: Sequence[HashPair]) -> tuple[np.ndarray, np.ndarray, int]:
    """Return ``(A, B, prime)`` arrays for a batch of hash pairs.

    Used by the device kernels, which want flat arrays rather than objects.
    All pairs must share the same prime.
    """
    if not pairs:
        raise ValueError("need at least one hash pair")
    primes = {p.prime for p in pairs}
    if len(primes) != 1:
        raise ValueError(f"hash pairs disagree on prime: {sorted(primes)}")
    a = np.array([p.a for p in pairs], dtype=np.uint64)
    b = np.array([p.b for p in pairs], dtype=np.uint64)
    return a, b, primes.pop()


def spawn_rng(seed: int | np.random.Generator | None, stream: str = "") -> np.random.Generator:
    """Create a generator from a seed, deriving independent named streams.

    ``spawn_rng(seed, "pass1")`` and ``spawn_rng(seed, "pass2")`` yield
    independent streams for the same experiment seed, so the two shingling
    passes use unrelated hash families (as the paper requires: shingles from
    different trials/passes must not get mixed).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if stream:
        # Fold the stream name into the entropy deterministically.
        name_entropy = [ord(ch) for ch in stream]
        ss = np.random.SeedSequence(entropy=seed, spawn_key=tuple(name_entropy))
        return np.random.default_rng(ss)
    return np.random.default_rng(seed)
