"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates the paper's tables as aligned ASCII tables
printed to stdout (and written next to the benchmark outputs), so the
reproduction's rows can be eyeballed against the paper's.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_seconds(seconds: float) -> str:
    """Render a duration the way the paper's tables do (two decimals)."""
    if seconds != seconds:  # NaN
        return "n/a"
    if seconds >= 100:
        return f"{seconds:,.2f}"
    return f"{seconds:.2f}"


def format_count(n: int) -> str:
    """Thousands-separated integer, e.g. ``1,562,984``."""
    return f"{int(n):,}"


def format_percent(fraction: float) -> str:
    """Render a fraction as the paper's percentage style, e.g. ``97.17%``."""
    return f"{100.0 * fraction:.2f}%"


def format_mean_std(mean: float, std: float) -> str:
    """Render ``mean ± std`` the way the paper reports degree/size stats."""
    if mean >= 100 or std >= 100:
        return f"{mean:,.0f} ± {std:,.0f}"
    return f"{mean:.2f} ± {std:.2f}"


def table_payload(title: str, headers: Sequence[str],
                  rows: Iterable[Sequence[object]]) -> dict:
    """One table as a JSON-serializable dict (machine-readable reports).

    The benchmark harness writes these next to the rendered ASCII tables so
    downstream tooling never has to parse the text form.  Cells are kept as
    given (typically pre-formatted strings, matching the rendered table).
    """
    return {"title": title, "headers": list(headers),
            "rows": [list(r) for r in rows]}


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    align: Sequence[str] | None = None,
) -> str:
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell values; converted with ``str``.
    title:
        Optional title printed above the table.
    align:
        Per-column alignment, each ``"l"`` or ``"r"``; defaults to left for
        the first column and right for the rest (numeric convention).
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}: {row}")
    if align is None:
        align = ["l"] + ["r"] * (ncols - 1)
    if len(align) != ncols:
        raise ValueError(f"align has {len(align)} entries, expected {ncols}")

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, width, a in zip(cells, widths, align):
            parts.append(cell.ljust(width) if a == "l" else cell.rjust(width))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(headers))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)
