"""Shared utilities: primality, seeded RNG helpers, timers, table rendering.

These are the lowest-level building blocks of the reproduction; every other
subpackage may depend on :mod:`repro.util` but never the other way around.
"""

from repro.util.primes import is_probable_prime, next_prime, random_prime
from repro.util.rng import HashPair, make_hash_pairs, spawn_rng
from repro.util.tables import format_table, format_seconds
from repro.util.timer import Stopwatch, TimeBreakdown

__all__ = [
    "HashPair",
    "Stopwatch",
    "TimeBreakdown",
    "format_seconds",
    "format_table",
    "is_probable_prime",
    "make_hash_pairs",
    "next_prime",
    "random_prime",
    "spawn_rng",
]
