"""Primality testing and prime generation.

The min-wise permutation family used by the Shingling heuristic (Broder et
al. 2000, as used by Gibson et al. 2005 and the paper's Section III-B) maps a
vertex id ``v`` to ``(A*v + B) mod P`` where ``P`` is a "big prime number".
For the map to be a bijection on ``[0, P)`` (and hence a genuine permutation
when all ids are below ``P``), ``P`` must be prime and ``A`` nonzero mod ``P``.

This module provides a deterministic Miller-Rabin test (exact for all 64-bit
integers via a fixed witness set) and helpers to pick suitable primes.
"""

from __future__ import annotations

# Witnesses proven sufficient for a deterministic Miller-Rabin test of any
# integer below 3,317,044,064,679,887,385,961,981 (> 2^64).  Sinclair (2011).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def is_probable_prime(n: int) -> bool:
    """Return True iff ``n`` is prime.

    Deterministic for all ``n < 2**64``; for larger inputs the fixed witness
    set makes this a strong probable-prime test with negligible error.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _DETERMINISTIC_WITNESSES:
        if a % n == 0:
            continue
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng) -> int:
    """Return a random prime with exactly ``bits`` bits.

    Parameters
    ----------
    bits:
        Bit width of the prime; must be >= 2.
    rng:
        A :class:`numpy.random.Generator` (or anything with ``integers``).
    """
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    lo = 1 << (bits - 1)
    hi = (1 << bits) - 1
    while True:
        candidate = int(rng.integers(lo, hi, endpoint=True))
        candidate |= 1  # force odd
        if candidate <= hi and is_probable_prime(candidate):
            return candidate
        p = next_prime(candidate)
        if p <= hi:
            return p


# A fixed prime just above 2**31, comfortably above any vertex id we use and
# small enough that (A*v + B) stays within int64/uint64 without overflow when
# A, B < P and v < P.  This mirrors the paper's fixed "big prime number P".
DEFAULT_PRIME: int = 2_147_483_659  # next_prime(2**31)
