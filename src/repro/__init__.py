"""repro — reproduction of "GPU-Accelerated Protein Family Identification
for Metagenomics" (Wu & Kalyanaraman, IPDPSW 2013).

The package implements the paper's gpClust system and every substrate it
depends on:

* :mod:`repro.core` — the two-pass Shingling clustering heuristic, serial
  and device-backed;
* :mod:`repro.device` — the simulated GPU (memory, transfers, kernels,
  batching);
* :mod:`repro.graph` — CSR graphs, union-find, connected components, stats;
* :mod:`repro.synthdata` — planted-family benchmark graph generation;
* :mod:`repro.sequence` — protein sequences, Smith-Waterman, homology graph
  construction (the pGraph analogue);
* :mod:`repro.baselines` — the GOS k-neighbor comparator and friends;
* :mod:`repro.eval` — pair-counting quality metrics, density, distributions;
* :mod:`repro.pipeline` — end-to-end workloads used by the benchmarks.

Quickstart::

    import repro
    graph = repro.synthdata.planted_family_graph(
        repro.synthdata.PlantedFamilyConfig(n_families=30), seed=1).graph
    result = repro.cluster_graph(graph, repro.ShinglingParams(c1=40, c2=20))
    print(result.summary())
"""

import repro.baselines as baselines
import repro.eval as eval  # noqa: A004 - deliberate subpackage re-export
import repro.pipeline as pipeline
import repro.sequence as sequence
import repro.synthdata as synthdata
from repro.core import (
    ClusterResult,
    GpClust,
    SerialPClust,
    ShinglingParams,
    cluster_by_components,
    cluster_graph,
)
from repro.device import DeviceSpec, SimulatedDevice
from repro.graph import CSRGraph

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "ClusterResult",
    "DeviceSpec",
    "GpClust",
    "SerialPClust",
    "ShinglingParams",
    "SimulatedDevice",
    "baselines",
    "cluster_by_components",
    "cluster_graph",
    "eval",
    "pipeline",
    "sequence",
    "synthdata",
    "__version__",
]
