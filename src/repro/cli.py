"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``generate``
    Write a planted-family benchmark graph (``.npz`` CSR + ``.labels.npz``
    ground truth) or a synthetic protein FASTA.
``cluster``
    Cluster a graph file with gpClust (or the serial baseline) and write the
    per-vertex labels; prints the cluster summary and component timings.
``stats``
    Print Table-II-style statistics of a graph file.
``compare``
    Score a clustering (or compute one) against a benchmark labels file:
    PPV/NPV/SP/SE, density, partition statistics.
``pipeline``
    End to end from a FASTA file: homology graph construction
    (k-mer or suffix-array pair filter + batched Smith-Waterman), gpClust
    clustering, and a per-cluster report.
``obs``
    Observability utilities over traces written by ``--trace``:
    ``obs summary`` (where the time went), ``obs critical-path`` (the
    span chain bounding the run, with slack), ``obs attribute``
    (bottleneck attribution: utilization, modeled-vs-wall roofline gaps,
    ranked loss causes), ``obs diff runA runB`` (what shifted between
    two traced runs), and ``obs ledger`` (cross-run metric trajectories
    with EWMA drift detection from ``benchmarks/results/ledger/``).

Examples
--------
::

    python -m repro generate --families 20 --seed 7 --out bench
    python -m repro cluster bench.npz --out labels.npz --c1 100 --c2 50
    python -m repro stats bench.npz
    python -m repro compare bench.npz --benchmark bench.labels.npz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.params import ShinglingParams
from repro.core.pipeline import cluster_graph
from repro.eval.confusion import quality_scores
from repro.eval.density import density_summary
from repro.eval.partition import Partition, partition_stats
from repro.graph.io import save_npz, timed_load
from repro.graph.stats import compute_graph_stats
from repro.sequence.fasta import write_fasta
from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph
from repro.util.tables import format_percent, format_seconds, format_table


#: ``--profile`` document schema: version 2 unifies the cluster/pipeline
#: shapes into one doc ({schema_version, metrics, spans?, device?,
#: homology?}) while keeping every version-1 key as an alias.
PROFILE_SCHEMA_VERSION = 2


def _params_from_args(args: argparse.Namespace) -> ShinglingParams:
    return ShinglingParams(s1=args.s1, c1=args.c1, s2=args.s2, c2=args.c2,
                           seed=args.seed, kernel=args.kernel,
                           exec_mode=args.exec_mode, streams=args.streams,
                           devices=args.devices,
                           aggregate_backend=args.aggregate_backend,
                           launch_graph=args.launch_graph)


def _make_device(params: ShinglingParams):
    """The run's explicit device: a group when more than one was asked."""
    from repro.device.device import SimulatedDevice
    from repro.device.group import DeviceGroup

    if params.devices > 1:
        return DeviceGroup(params.devices)
    return SimulatedDevice()


def _obs_requested(args: argparse.Namespace) -> bool:
    return (args.trace is not None or args.metrics_out is not None
            or args.profile is not None)


def _make_obs(args: argparse.Namespace):
    """The command's observability context (None when nothing was asked)."""
    if not _obs_requested(args):
        return None
    from repro.obs import observe

    return observe(trace=args.trace is not None, metrics=True)


def _profile_doc(ctx, device=None, homology=None) -> dict:
    """The unified ``--profile`` JSON document (schema version 2).

    Version-1 consumers keep working: the device profile's ``kernels`` /
    ``transfers`` / ``scratch_pool`` keys are aliased at the top level
    (the old ``cluster --profile`` shape) and the ``homology`` / ``device``
    keys match the old ``pipeline --profile`` shape.
    """
    doc: dict = {"schema_version": PROFILE_SCHEMA_VERSION,
                 "metrics": ctx.metrics.snapshot()}
    if ctx.tracer.enabled:
        doc["spans"] = ctx.tracer.summary()
    if device is not None:
        profile = device.profile()
        doc["device"] = profile
        doc["device_name"] = profile["device"]
        # v1 aliases at the top level (the old ``cluster --profile`` shape).
        for key in ("kernels", "transfers", "scratch_pool",
                    "measured_buckets_s"):
            doc[key] = profile[key]
    if homology is not None and homology.timings is not None:
        doc["homology"] = homology.timings.as_dict()
    return doc


def _emit_obs(args: argparse.Namespace, ctx, device=None,
              homology=None) -> None:
    """Write whatever ``--profile`` / ``--trace`` / ``--metrics-out`` asked."""
    import json

    if device is not None:
        device.sync_metrics()  # flush transfer/scratch gauges
    if args.profile is not None:
        report = json.dumps(_profile_doc(ctx, device=device,
                                         homology=homology),
                            indent=2, sort_keys=True)
        if args.profile == "-":
            print(report)
        else:
            Path(args.profile).write_text(report + "\n")
            print(f"profile written to {args.profile}")
    if args.trace is not None:
        from repro.obs import write_chrome_trace

        tracer = ctx.tracer
        write_chrome_trace(
            args.trace, tracer.records, tracer.t0,
            metadata={"command": args.command,
                      "metrics": ctx.metrics.snapshot(),
                      "spans": tracer.summary()})
        print(f"trace written to {args.trace} "
              "(load it at https://ui.perfetto.dev)")
    if args.metrics_out is not None:
        snapshot = {"schema_version": 1, **ctx.metrics.snapshot()}
        Path(args.metrics_out).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"metrics written to {args.metrics_out}")


def _add_param_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--s1", type=int, default=2, help="pass-1 shingle size")
    parser.add_argument("--c1", type=int, default=200, help="pass-1 trials")
    parser.add_argument("--s2", type=int, default=2, help="pass-2 shingle size")
    parser.add_argument("--c2", type=int, default=100, help="pass-2 trials")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument("--kernel", choices=["select", "sort", "fused"],
                        default="fused",
                        help="device top-s kernel (fused = single-launch "
                             "hash+pack with on-device dedup reduction)")
    parser.add_argument("--exec-mode", dest="exec_mode",
                        choices=["sync", "prefetch", "multistream",
                                 "multidevice"],
                        default="sync",
                        help="device-path schedule: synchronous, double-"
                             "buffered uploads, concurrent trial-chunk "
                             "streams, or trial chunks sharded over a "
                             "device group (all bit-identical)")
    parser.add_argument("--streams", type=int, default=2,
                        help="worker count for --exec-mode multistream")
    parser.add_argument("--devices", type=int, default=1,
                        help="simulated device count; more than one runs "
                             "the multidevice schedule over a device group "
                             "(output is identical for every count)")
    parser.add_argument("--aggregate-backend",
                        choices=["auto", "host", "device"], default="auto",
                        help="where inter-pass aggregation and Phase III "
                             "connected components run: auto offloads to "
                             "the device when prerequisites hold, host "
                             "forces the CPU paths, device prefers the "
                             "offloads (all bit-identical)")
    parser.add_argument("--launch-graph",
                        choices=["auto", "on", "off"], default="auto",
                        help="kernel launch-graph capture/replay for the "
                             "shingle hot path: auto captures a shape class "
                             "after its first matching chunk, on captures "
                             "on first sight, off always launches eagerly "
                             "(all bit-identical)")


def cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    if args.fasta:
        protein_set = generate_protein_families(
            SequenceFamilyConfig(n_families=args.families), seed=args.seed)
        path = out.with_suffix(".fasta")
        write_fasta(protein_set.as_fasta_records(), path)
        np.savez_compressed(out.with_suffix(".labels.npz"),
                            labels=protein_set.family_labels)
        print(f"wrote {protein_set.n_sequences} sequences to {path}")
        return 0
    planted = planted_family_graph(
        PlantedFamilyConfig(n_families=args.families), seed=args.seed)
    save_npz(planted.graph, out.with_suffix(".npz"))
    save_npz(planted.gos_graph, out.with_suffix(".gos.npz"))
    np.savez_compressed(out.with_suffix(".labels.npz"),
                        labels=planted.family_labels)
    print(f"wrote graph ({planted.graph.n_vertices} vertices, "
          f"{planted.graph.n_edges} edges) to {out.with_suffix('.npz')}")
    print(f"ground truth: {out.with_suffix('.labels.npz')}; GOS-pipeline "
          f"view: {out.with_suffix('.gos.npz')}")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    params = _params_from_args(args)
    if args.profile is not None and args.backend != "device":
        print("--profile requires --backend device; ignoring",
              file=sys.stderr)
        args.profile = None
    ctx = _make_obs(args)
    if ctx is None:
        result = cluster_graph(args.graph, params, backend=args.backend)
    else:
        from repro.obs import use_obs

        device = None
        with use_obs(ctx):
            if args.backend == "device":
                from repro.core.pipeline import GpClust

                graph, io_seconds = timed_load(args.graph)
                device = _make_device(params)
                result = GpClust(params).run(graph, io_seconds=io_seconds,
                                             device=device)
            else:
                result = cluster_graph(args.graph, params,
                                       backend=args.backend)
        _emit_obs(args, ctx, device=device)
    if args.out:
        np.savez_compressed(args.out, labels=result.labels)
        print(f"labels written to {args.out}")
    summary = result.summary()
    print(format_table(["key", "value"],
                       [[k, str(v)] for k, v in summary.items()],
                       title="clustering summary"))
    t = result.timings
    print(format_table(
        ["component", "seconds"],
        [[k, format_seconds(v)] for k, v in t.as_row().items()],
        title="component breakdown"))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph, io_seconds = timed_load(args.graph)
    stats = compute_graph_stats(graph)
    print(stats.render())
    print(f"(loaded in {format_seconds(io_seconds)}s; "
          f"{stats.n_singletons} singleton vertices excluded)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    with np.load(args.benchmark) as data:
        benchmark = Partition(data["labels"])
    if args.labels:
        with np.load(args.labels) as data:
            test = Partition(data["labels"])
    else:
        params = _params_from_args(args)
        result = cluster_graph(args.graph, params, backend=args.backend)
        test = Partition(result.labels)

    qs = quality_scores(test, benchmark, min_size=args.min_size)
    graph, _ = timed_load(args.graph)
    dens = density_summary(graph, test, min_size=args.min_size)
    st = partition_stats(test, "clustering", min_size=args.min_size)
    print(format_table(
        ["metric", "value"],
        [["PPV", format_percent(qs.ppv)],
         ["NPV", format_percent(qs.npv)],
         ["Specificity", format_percent(qs.specificity)],
         ["Sensitivity", format_percent(qs.sensitivity)],
         ["Density", f"{dens[0]:.2f} ± {dens[1]:.2f}"],
         [f"#clusters(>={args.min_size})", str(st.n_groups)],
         ["#sequences clustered", str(st.n_sequences)]],
        title=f"quality vs. {args.benchmark}"))
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.sequence.alphabet import encode
    from repro.sequence.fasta import read_fasta
    from repro.sequence.homology import HomologyConfig, build_homology_graph

    records = read_fasta(args.fasta)
    sequences = [encode(seq) for _, seq in records]
    names = [header.split()[0] for header, _ in records]
    print(f"read {len(records)} sequences from {args.fasta}")

    if args.profile is not None and args.backend != "device":
        print("--profile requires --backend device; ignoring",
              file=sys.stderr)
        args.profile = None
    ctx = _make_obs(args)
    params = _params_from_args(args)
    homology_config = HomologyConfig(pair_filter=args.pair_filter,
                                     min_normalized_score=args.min_score,
                                     n_jobs=args.jobs,
                                     align_backend=args.align_backend,
                                     devices=args.devices)
    if ctx is None:
        homology = build_homology_graph(sequences, homology_config)
        print(f"homology: {homology.n_candidate_pairs} candidate pairs -> "
              f"{homology.n_edges} edges")
        result = cluster_graph(homology.graph, params, backend=args.backend)
    else:
        from repro.obs import use_obs

        device = None
        with use_obs(ctx):
            if args.backend == "device":
                # One device (or group) for the whole run: the alignment
                # offload (when --align-backend resolves to device) and the
                # clustering pass share its scratch pool, so --profile
                # shows the sw_* kernels next to the shingling ones.
                device = _make_device(params)
            homology = build_homology_graph(sequences, homology_config,
                                            device=device)
            print(f"homology: {homology.n_candidate_pairs} candidate pairs "
                  f"-> {homology.n_edges} edges")
            if args.backend == "device":
                from repro.core.pipeline import GpClust

                result = GpClust(params).run(homology.graph, device=device)
            else:
                result = cluster_graph(homology.graph, params,
                                       backend=args.backend)
        _emit_obs(args, ctx, device=device, homology=homology)
    clusters = result.clusters(min_size=args.min_size)
    rows = []
    for i, members in enumerate(sorted(clusters, key=len, reverse=True)):
        shown = ", ".join(names[v] for v in members[:6])
        more = ", ..." if members.size > 6 else ""
        rows.append([str(i), str(members.size), shown + more])
    print(format_table(["cluster", "size", "members"], rows,
                       title=f"clusters of size >= {args.min_size}",
                       align=["r", "r", "l"]))
    if args.out:
        np.savez_compressed(args.out, labels=result.labels)
        print(f"labels written to {args.out}")
    return 0


def cmd_obs_summary(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, render_summary

    doc = load_trace(args.trace_file)
    print(render_summary(doc, top_n=args.top))
    return 0


def _print_obs_report(args: argparse.Namespace, payload: dict,
                      rendered: str) -> int:
    """Emit an analysis result as text (default) or JSON (``--json``)."""
    import json

    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(rendered)
    return 0


def cmd_obs_critical_path(args: argparse.Namespace) -> int:
    from repro.obs import critical_path, load_trace, render_critical_path

    cp = critical_path(load_trace(args.trace_file))
    return _print_obs_report(args, cp, render_critical_path(cp, top_n=args.top))


def cmd_obs_attribute(args: argparse.Namespace) -> int:
    import json

    from repro.obs import attribute, load_trace, render_attribution

    metrics = None
    if args.metrics is not None:
        metrics = json.loads(Path(args.metrics).read_text())
    report = attribute(load_trace(args.trace_file), metrics=metrics)
    return _print_obs_report(args, report, render_attribution(report))


def cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_traces, load_trace, render_diff

    diff = diff_traces(load_trace(args.trace_a), load_trace(args.trace_b))
    return _print_obs_report(args, diff, render_diff(diff, top_n=args.top))


def cmd_obs_ledger(args: argparse.Namespace) -> int:
    from repro.obs import ledger_report, load_ledger, render_ledger_report

    entries = load_ledger(args.dir, bench=args.bench)
    if not entries:
        print(f"no ledger entries under {args.dir}"
              + (f" for bench {args.bench!r}" if args.bench else ""))
        return 0
    report = ledger_report(entries, tolerance=args.tolerance)
    rendered = render_ledger_report(report, tolerance=args.tolerance,
                                    drift_only=args.drift_only)
    _print_obs_report(args, {"entries": len(entries), "report": report},
                      rendered)
    drifted = sum(1 for r in report if r["verdict"] == "DRIFT")
    if args.fail_on_drift and drifted:
        print(f"LEDGER DRIFT: {drifted} series outside the EWMA band",
              file=sys.stderr)
        return 1
    return 0


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome Trace Event JSON of the run "
                             "(Perfetto-loadable; pool workers and "
                             "simulated streams appear as separate tracks)")
    parser.add_argument("--metrics-out", dest="metrics_out", metavar="PATH",
                        default=None,
                        help="write the metrics snapshot (counters/gauges/"
                             "histograms: kernel launches, transfer bytes, "
                             "scratch reuse, dedup ratios, peak RSS) as JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="gpClust reproduction: Shingling-based protein family "
                    "identification")
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate benchmark data")
    p_gen.add_argument("--families", type=int, default=20)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output path stem")
    p_gen.add_argument("--fasta", action="store_true",
                       help="generate protein sequences instead of a graph")
    p_gen.set_defaults(func=cmd_generate)

    p_cluster = sub.add_parser("cluster", help="cluster a graph file")
    p_cluster.add_argument("graph", help="graph file (.npz or edge list)")
    p_cluster.add_argument("--out", help="write labels to this .npz")
    p_cluster.add_argument("--backend", choices=["device", "serial"],
                           default="device")
    p_cluster.add_argument("--profile", nargs="?", const="-", default=None,
                           metavar="PATH",
                           help="emit a per-kernel-launch timing/bytes "
                                "breakdown as JSON (to stdout, or to PATH "
                                "when given): cost-model launch counts, "
                                "transfer bytes, scratch-pool reuse counters")
    _add_obs_args(p_cluster)
    _add_param_args(p_cluster)
    p_cluster.set_defaults(func=cmd_cluster)

    p_stats = sub.add_parser("stats", help="graph statistics (Table II)")
    p_stats.add_argument("graph")
    p_stats.set_defaults(func=cmd_stats)

    p_cmp = sub.add_parser("compare", help="score against a benchmark")
    p_cmp.add_argument("graph")
    p_cmp.add_argument("--benchmark", required=True,
                       help=".npz with a 'labels' array (ground truth)")
    p_cmp.add_argument("--labels", help="precomputed clustering labels .npz")
    p_cmp.add_argument("--backend", choices=["device", "serial"],
                       default="device")
    p_cmp.add_argument("--min-size", type=int, default=20)
    _add_param_args(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_pipe = sub.add_parser("pipeline",
                            help="FASTA -> homology graph -> clusters")
    p_pipe.add_argument("fasta", help="input FASTA file of protein sequences")
    p_pipe.add_argument("--pair-filter", choices=["kmer", "suffix"],
                        default="kmer")
    p_pipe.add_argument("--min-score", type=float, default=0.40,
                        help="normalized Smith-Waterman edge threshold")
    p_pipe.add_argument("--min-size", type=int, default=3,
                        help="smallest cluster to report")
    p_pipe.add_argument("--backend", choices=["device", "serial"],
                        default="device")
    p_pipe.add_argument("--jobs", type=int, default=1,
                        help="alignment worker processes for homology-graph "
                             "construction (0 = all cores; results are "
                             "identical for any value)")
    p_pipe.add_argument("--align-backend", dest="align_backend",
                        choices=["auto", "host", "pool", "device"],
                        default="auto",
                        help="Smith-Waterman scoring backend: in-process "
                             "(host), process pool (pool, uses --jobs), "
                             "simulated-device offload with length-binned "
                             "packing (device), or a cost-model choice "
                             "(auto); scores and edges are identical for "
                             "every backend")
    p_pipe.add_argument("--profile", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="emit a JSON timing breakdown covering both "
                             "stages: homology per-stage wall clock (seed "
                             "filter / self-scores / alignment / graph "
                             "build) and the device kernel profile")
    p_pipe.add_argument("--out", help="write labels to this .npz")
    _add_obs_args(p_pipe)
    _add_param_args(p_pipe)
    p_pipe.set_defaults(func=cmd_pipeline)

    p_obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_summary = obs_sub.add_parser(
        "summary", help="where a traced run spent its time")
    p_obs_summary.add_argument("trace_file", metavar="trace.json",
                               help="trace written by --trace")
    p_obs_summary.add_argument("--top", type=int, default=15,
                               help="number of span rows to show")
    p_obs_summary.set_defaults(func=cmd_obs_summary)

    p_obs_cp = obs_sub.add_parser(
        "critical-path",
        help="the chain of spans that bounds a traced run's wall time")
    p_obs_cp.add_argument("trace_file", metavar="trace.json",
                          help="trace written by --trace")
    p_obs_cp.add_argument("--top", type=int, default=25,
                          help="number of (merged) path rows to show")
    p_obs_cp.add_argument("--json", action="store_true",
                          help="emit the machine-readable path instead of "
                               "the rendered table")
    p_obs_cp.set_defaults(func=cmd_obs_critical_path)

    p_obs_attr = obs_sub.add_parser(
        "attribute",
        help="bottleneck attribution: utilization, roofline gaps, and a "
             "ranked list of where the run lost time")
    p_obs_attr.add_argument("trace_file", metavar="trace.json",
                            help="trace written by --trace (metrics are "
                                 "read from its embedded snapshot)")
    p_obs_attr.add_argument("--metrics", metavar="PATH", default=None,
                            help="metrics snapshot JSON overriding the "
                                 "one embedded in the trace")
    p_obs_attr.add_argument("--json", action="store_true",
                            help="emit the machine-readable report")
    p_obs_attr.set_defaults(func=cmd_obs_attribute)

    p_obs_diff = obs_sub.add_parser(
        "diff", help="per-span and per-process deltas between two traces")
    p_obs_diff.add_argument("trace_a", metavar="runA.json",
                            help="baseline trace")
    p_obs_diff.add_argument("trace_b", metavar="runB.json",
                            help="comparison trace")
    p_obs_diff.add_argument("--top", type=int, default=15,
                            help="number of span-delta rows to show")
    p_obs_diff.add_argument("--json", action="store_true",
                            help="emit the machine-readable diff")
    p_obs_diff.set_defaults(func=cmd_obs_diff)

    p_obs_ledger = obs_sub.add_parser(
        "ledger",
        help="cross-run metric trajectories from the performance ledger")
    p_obs_ledger.add_argument("--dir", default="benchmarks/results/ledger",
                              help="ledger directory of .jsonl files")
    p_obs_ledger.add_argument("--bench", default=None,
                              help="restrict to one benchmark's entries")
    p_obs_ledger.add_argument("--tolerance", type=float, default=0.15,
                              help="EWMA drift band (fractional)")
    p_obs_ledger.add_argument("--drift-only", action="store_true",
                              help="show only series flagged as drifted")
    p_obs_ledger.add_argument("--fail-on-drift", action="store_true",
                              help="exit non-zero when any series drifted")
    p_obs_ledger.add_argument("--json", action="store_true",
                              help="emit the machine-readable report")
    p_obs_ledger.set_defaults(func=cmd_obs_ledger)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
