"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``generate``
    Write a planted-family benchmark graph (``.npz`` CSR + ``.labels.npz``
    ground truth) or a synthetic protein FASTA.
``cluster``
    Cluster a graph file with gpClust (or the serial baseline) and write the
    per-vertex labels; prints the cluster summary and component timings.
``stats``
    Print Table-II-style statistics of a graph file.
``compare``
    Score a clustering (or compute one) against a benchmark labels file:
    PPV/NPV/SP/SE, density, partition statistics.
``pipeline``
    End to end from a FASTA file: homology graph construction
    (k-mer or suffix-array pair filter + batched Smith-Waterman), gpClust
    clustering, and a per-cluster report.

Examples
--------
::

    python -m repro generate --families 20 --seed 7 --out bench
    python -m repro cluster bench.npz --out labels.npz --c1 100 --c2 50
    python -m repro stats bench.npz
    python -m repro compare bench.npz --benchmark bench.labels.npz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.params import ShinglingParams
from repro.core.pipeline import cluster_graph
from repro.eval.confusion import quality_scores
from repro.eval.density import density_summary
from repro.eval.partition import Partition, partition_stats
from repro.graph.io import save_npz, timed_load
from repro.graph.stats import compute_graph_stats
from repro.sequence.fasta import write_fasta
from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph
from repro.util.tables import format_percent, format_seconds, format_table


def _params_from_args(args: argparse.Namespace) -> ShinglingParams:
    return ShinglingParams(s1=args.s1, c1=args.c1, s2=args.s2, c2=args.c2,
                           seed=args.seed, kernel=args.kernel,
                           exec_mode=args.exec_mode, streams=args.streams)


def _add_param_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--s1", type=int, default=2, help="pass-1 shingle size")
    parser.add_argument("--c1", type=int, default=200, help="pass-1 trials")
    parser.add_argument("--s2", type=int, default=2, help="pass-2 shingle size")
    parser.add_argument("--c2", type=int, default=100, help="pass-2 trials")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument("--kernel", choices=["select", "sort", "fused"],
                        default="fused",
                        help="device top-s kernel (fused = single-launch "
                             "hash+pack with on-device dedup reduction)")
    parser.add_argument("--exec-mode", dest="exec_mode",
                        choices=["sync", "prefetch", "multistream"],
                        default="sync",
                        help="device-path schedule: synchronous, double-"
                             "buffered uploads, or concurrent trial-chunk "
                             "streams (all bit-identical)")
    parser.add_argument("--streams", type=int, default=2,
                        help="worker count for --exec-mode multistream")


def cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    if args.fasta:
        protein_set = generate_protein_families(
            SequenceFamilyConfig(n_families=args.families), seed=args.seed)
        path = out.with_suffix(".fasta")
        write_fasta(protein_set.as_fasta_records(), path)
        np.savez_compressed(out.with_suffix(".labels.npz"),
                            labels=protein_set.family_labels)
        print(f"wrote {protein_set.n_sequences} sequences to {path}")
        return 0
    planted = planted_family_graph(
        PlantedFamilyConfig(n_families=args.families), seed=args.seed)
    save_npz(planted.graph, out.with_suffix(".npz"))
    save_npz(planted.gos_graph, out.with_suffix(".gos.npz"))
    np.savez_compressed(out.with_suffix(".labels.npz"),
                        labels=planted.family_labels)
    print(f"wrote graph ({planted.graph.n_vertices} vertices, "
          f"{planted.graph.n_edges} edges) to {out.with_suffix('.npz')}")
    print(f"ground truth: {out.with_suffix('.labels.npz')}; GOS-pipeline "
          f"view: {out.with_suffix('.gos.npz')}")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    params = _params_from_args(args)
    if args.profile is not None and args.backend == "device":
        import json

        from repro.core.pipeline import GpClust
        from repro.device.device import SimulatedDevice

        graph, io_seconds = timed_load(args.graph)
        device = SimulatedDevice()
        result = GpClust(params).run(graph, io_seconds=io_seconds,
                                     device=device)
        report = json.dumps(device.profile(), indent=2, sort_keys=True)
        if args.profile == "-":
            print(report)
        else:
            Path(args.profile).write_text(report + "\n")
            print(f"profile written to {args.profile}")
    else:
        if args.profile is not None:
            print("--profile requires --backend device; ignoring",
                  file=sys.stderr)
        result = cluster_graph(args.graph, params, backend=args.backend)
    if args.out:
        np.savez_compressed(args.out, labels=result.labels)
        print(f"labels written to {args.out}")
    summary = result.summary()
    print(format_table(["key", "value"],
                       [[k, str(v)] for k, v in summary.items()],
                       title="clustering summary"))
    t = result.timings
    print(format_table(
        ["component", "seconds"],
        [[k, format_seconds(v)] for k, v in t.as_row().items()],
        title="component breakdown"))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph, io_seconds = timed_load(args.graph)
    stats = compute_graph_stats(graph)
    print(stats.render())
    print(f"(loaded in {format_seconds(io_seconds)}s; "
          f"{stats.n_singletons} singleton vertices excluded)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    with np.load(args.benchmark) as data:
        benchmark = Partition(data["labels"])
    if args.labels:
        with np.load(args.labels) as data:
            test = Partition(data["labels"])
    else:
        params = _params_from_args(args)
        result = cluster_graph(args.graph, params, backend=args.backend)
        test = Partition(result.labels)

    qs = quality_scores(test, benchmark, min_size=args.min_size)
    graph, _ = timed_load(args.graph)
    dens = density_summary(graph, test, min_size=args.min_size)
    st = partition_stats(test, "clustering", min_size=args.min_size)
    print(format_table(
        ["metric", "value"],
        [["PPV", format_percent(qs.ppv)],
         ["NPV", format_percent(qs.npv)],
         ["Specificity", format_percent(qs.specificity)],
         ["Sensitivity", format_percent(qs.sensitivity)],
         ["Density", f"{dens[0]:.2f} ± {dens[1]:.2f}"],
         [f"#clusters(>={args.min_size})", str(st.n_groups)],
         ["#sequences clustered", str(st.n_sequences)]],
        title=f"quality vs. {args.benchmark}"))
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.sequence.alphabet import encode
    from repro.sequence.fasta import read_fasta
    from repro.sequence.homology import HomologyConfig, build_homology_graph

    records = read_fasta(args.fasta)
    sequences = [encode(seq) for _, seq in records]
    names = [header.split()[0] for header, _ in records]
    print(f"read {len(records)} sequences from {args.fasta}")

    homology = build_homology_graph(
        sequences,
        HomologyConfig(pair_filter=args.pair_filter,
                       min_normalized_score=args.min_score,
                       n_jobs=args.jobs))
    print(f"homology: {homology.n_candidate_pairs} candidate pairs -> "
          f"{homology.n_edges} edges")

    params = _params_from_args(args)
    if args.profile is not None and args.backend == "device":
        import json

        from repro.core.pipeline import GpClust
        from repro.device.device import SimulatedDevice

        device = SimulatedDevice()
        result = GpClust(params).run(homology.graph, device=device)
        profile = {"homology": homology.timings.as_dict(),
                   "device": device.profile()}
        report = json.dumps(profile, indent=2, sort_keys=True)
        if args.profile == "-":
            print(report)
        else:
            Path(args.profile).write_text(report + "\n")
            print(f"profile written to {args.profile}")
    else:
        if args.profile is not None:
            print("--profile requires --backend device; ignoring",
                  file=sys.stderr)
        result = cluster_graph(homology.graph, params, backend=args.backend)
    clusters = result.clusters(min_size=args.min_size)
    rows = []
    for i, members in enumerate(sorted(clusters, key=len, reverse=True)):
        shown = ", ".join(names[v] for v in members[:6])
        more = ", ..." if members.size > 6 else ""
        rows.append([str(i), str(members.size), shown + more])
    print(format_table(["cluster", "size", "members"], rows,
                       title=f"clusters of size >= {args.min_size}",
                       align=["r", "r", "l"]))
    if args.out:
        np.savez_compressed(args.out, labels=result.labels)
        print(f"labels written to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="gpClust reproduction: Shingling-based protein family "
                    "identification")
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate benchmark data")
    p_gen.add_argument("--families", type=int, default=20)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output path stem")
    p_gen.add_argument("--fasta", action="store_true",
                       help="generate protein sequences instead of a graph")
    p_gen.set_defaults(func=cmd_generate)

    p_cluster = sub.add_parser("cluster", help="cluster a graph file")
    p_cluster.add_argument("graph", help="graph file (.npz or edge list)")
    p_cluster.add_argument("--out", help="write labels to this .npz")
    p_cluster.add_argument("--backend", choices=["device", "serial"],
                           default="device")
    p_cluster.add_argument("--profile", nargs="?", const="-", default=None,
                           metavar="PATH",
                           help="emit a per-kernel-launch timing/bytes "
                                "breakdown as JSON (to stdout, or to PATH "
                                "when given): cost-model launch counts, "
                                "transfer bytes, scratch-pool reuse counters")
    _add_param_args(p_cluster)
    p_cluster.set_defaults(func=cmd_cluster)

    p_stats = sub.add_parser("stats", help="graph statistics (Table II)")
    p_stats.add_argument("graph")
    p_stats.set_defaults(func=cmd_stats)

    p_cmp = sub.add_parser("compare", help="score against a benchmark")
    p_cmp.add_argument("graph")
    p_cmp.add_argument("--benchmark", required=True,
                       help=".npz with a 'labels' array (ground truth)")
    p_cmp.add_argument("--labels", help="precomputed clustering labels .npz")
    p_cmp.add_argument("--backend", choices=["device", "serial"],
                       default="device")
    p_cmp.add_argument("--min-size", type=int, default=20)
    _add_param_args(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_pipe = sub.add_parser("pipeline",
                            help="FASTA -> homology graph -> clusters")
    p_pipe.add_argument("fasta", help="input FASTA file of protein sequences")
    p_pipe.add_argument("--pair-filter", choices=["kmer", "suffix"],
                        default="kmer")
    p_pipe.add_argument("--min-score", type=float, default=0.40,
                        help="normalized Smith-Waterman edge threshold")
    p_pipe.add_argument("--min-size", type=int, default=3,
                        help="smallest cluster to report")
    p_pipe.add_argument("--backend", choices=["device", "serial"],
                        default="device")
    p_pipe.add_argument("--jobs", type=int, default=1,
                        help="alignment worker processes for homology-graph "
                             "construction (0 = all cores; results are "
                             "identical for any value)")
    p_pipe.add_argument("--profile", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="emit a JSON timing breakdown covering both "
                             "stages: homology per-stage wall clock (seed "
                             "filter / self-scores / alignment / graph "
                             "build) and the device kernel profile")
    p_pipe.add_argument("--out", help="write labels to this .npz")
    _add_param_args(p_pipe)
    p_pipe.set_defaults(func=cmd_pipeline)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
