"""One-call comparison reports: every Section IV-D measurement at once.

The benchmarks and examples all need the same bundle — Table III scores,
Table IV statistics, densities, Figure 5 distributions — for a set of
partitions against a benchmark.  :class:`ComparisonReport` computes and
renders them in one place, so downstream users get the paper's whole
evaluation with two lines:

    report = ComparisonReport.compute(graph, {"gpClust": gp, "GOS": gos}, bench)
    print(report.render())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.confusion import QualityScores, quality_scores
from repro.eval.density import density_summary
from repro.eval.distribution import SizeDistribution, size_distribution
from repro.eval.external import adjusted_rand_index, pair_f1
from repro.eval.partition import Partition, PartitionStats, partition_stats
from repro.graph.csr import CSRGraph
from repro.util.tables import format_mean_std, format_percent, format_table


@dataclass
class MethodReport:
    """All measurements of one method's partition."""

    name: str
    quality: QualityScores
    stats: PartitionStats
    density_mean: float
    density_std: float
    distribution: SizeDistribution
    ari: float
    f1: float


@dataclass
class ComparisonReport:
    """Measurements for several methods against one benchmark partition."""

    methods: list[MethodReport]
    benchmark_stats: PartitionStats
    benchmark_density: tuple[float, float]
    min_size: int

    @classmethod
    def compute(cls, graph: CSRGraph, partitions: dict[str, Partition],
                benchmark: Partition, min_size: int = 20) -> "ComparisonReport":
        """Evaluate every named partition against the benchmark.

        ``graph`` is the evaluation graph for density (Eq. 6); the paper's
        ``size >= min_size`` reporting filter applies to the test partitions.
        """
        methods = []
        for name, partition in partitions.items():
            qs = quality_scores(partition, benchmark, min_size=min_size)
            st = partition_stats(partition, name, min_size=min_size)
            dens = density_summary(graph, partition, min_size=min_size)
            dist = size_distribution(partition)
            methods.append(MethodReport(
                name=name, quality=qs, stats=st,
                density_mean=dens[0], density_std=dens[1],
                distribution=dist,
                ari=adjusted_rand_index(partition.filtered(min_size), benchmark),
                f1=pair_f1(partition.filtered(min_size), benchmark),
            ))
        return cls(
            methods=methods,
            benchmark_stats=partition_stats(benchmark, "Benchmark", min_size=1),
            benchmark_density=density_summary(graph, benchmark, min_size=1),
            min_size=min_size,
        )

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def quality_table(self) -> str:
        """Table III plus the extra external indices."""
        rows = []
        for m in self.methods:
            rows.append(m.quality.table_row(m.name)
                        + [f"{m.ari:.3f}", f"{m.f1:.3f}"])
        return format_table(
            ["Approach", "PPV", "NPV", "SP", "SE", "ARI", "pair-F1"], rows,
            title=f"Quality vs. benchmark (clusters >= {self.min_size})")

    def partition_table(self) -> str:
        """Table IV plus densities."""
        rows = [self.benchmark_stats.table_row()
                + [format_mean_std(*self.benchmark_density)]]
        for m in self.methods:
            rows.append(m.stats.table_row()
                        + [format_mean_std(m.density_mean, m.density_std)])
        return format_table(
            ["Partition", "# Groups", "# Seqs", "Largest", "Avg. size",
             "Density"], rows, title="Partition statistics")

    def distribution_table(self) -> str:
        """Figure 5(a)-style counts, one column per method."""
        if not self.methods:
            return "(no methods)"
        labels = self.methods[0].distribution.labels()
        rows = []
        for i, label in enumerate(labels):
            rows.append([label] + [str(int(m.distribution.group_counts[i]))
                                   for m in self.methods])
        return format_table(
            ["Group size"] + [m.name for m in self.methods], rows,
            title="Group-size distribution (Fig. 5a)")

    def render(self) -> str:
        return "\n\n".join([self.quality_table(), self.partition_table(),
                            self.distribution_table()])

    def method(self, name: str) -> MethodReport:
        for m in self.methods:
            if m.name == name:
                return m
        raise KeyError(name)
