"""Standard external clustering indices beyond the paper's PPV/NPV/SP/SE.

The paper scores partitions with pairwise predictive values (Equations 2-5);
downstream users usually also want the textbook indices.  All are computed
from the same contingency machinery as :mod:`repro.eval.confusion` — exact,
and never enumerating O(n^2) pairs.

* :func:`adjusted_rand_index` — chance-corrected pair agreement (Hubert &
  Arabie 1985);
* :func:`normalized_mutual_information` — information-theoretic agreement;
* :func:`purity` — fraction of vertices in their cluster's majority family;
* :func:`pair_f1` — harmonic mean of pairwise precision (PPV) and recall
  (SE), a single-number summary of the Table III trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.eval.confusion import pair_confusion
from repro.eval.partition import Partition


def _contingency(test: Partition, benchmark: Partition) -> np.ndarray:
    """Dense contingency table: rows = test groups, cols = benchmark."""
    if test.n_vertices != benchmark.n_vertices:
        raise ValueError("partitions cover different universes")
    t, b = test.labels, benchmark.labels
    n_t = int(t.max()) + 1 if t.size else 0
    n_b = int(b.max()) + 1 if b.size else 0
    table = np.zeros((n_t, n_b), dtype=np.int64)
    np.add.at(table, (t, b), 1)
    return table


def adjusted_rand_index(test: Partition, benchmark: Partition) -> float:
    """ARI in [-1, 1]; 1 iff identical partitions, ~0 for random labels."""
    conf = pair_confusion(test, benchmark)
    n_pairs = conf.total
    if n_pairs == 0:
        return 1.0
    sum_ab = conf.tp
    sum_a = conf.tp + conf.fp    # co-clustered in test
    sum_b = conf.tp + conf.fn    # co-clustered in benchmark
    expected = sum_a * sum_b / n_pairs
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_ab - expected) / (max_index - expected))


def normalized_mutual_information(test: Partition, benchmark: Partition) -> float:
    """NMI (arithmetic normalization) in [0, 1]."""
    table = _contingency(test, benchmark)
    n = table.sum()
    if n == 0:
        return 1.0
    pij = table / n
    pi = pij.sum(axis=1)
    pj = pij.sum(axis=0)
    nz = pij > 0
    mi = float((pij[nz] * np.log(
        pij[nz] / (pi[:, None] * pj[None, :])[nz])).sum())
    h_t = float(-(pi[pi > 0] * np.log(pi[pi > 0])).sum())
    h_b = float(-(pj[pj > 0] * np.log(pj[pj > 0])).sum())
    denom = (h_t + h_b) / 2.0
    if denom == 0.0:
        return 1.0
    return max(0.0, min(1.0, mi / denom))


def purity(test: Partition, benchmark: Partition) -> float:
    """Fraction of vertices whose cluster's majority family is theirs."""
    table = _contingency(test, benchmark)
    n = table.sum()
    if n == 0:
        return 1.0
    return float(table.max(axis=1).sum() / n)


def pair_f1(test: Partition, benchmark: Partition) -> float:
    """Harmonic mean of pairwise precision and recall."""
    conf = pair_confusion(test, benchmark)
    denom = 2 * conf.tp + conf.fp + conf.fn
    if denom == 0:
        return 1.0
    return float(2 * conf.tp / denom)
