"""Partitions over a fixed vertex universe.

All quality measurements compare partitions of the same sequence set.  A
:class:`Partition` wraps dense labels plus the reporting convention of the
paper: "In the GOS study, only clusters of size >= 20 are reported, therefore
we only use clusters of size >= 20 ... for the qualitative assessment" —
vertices whose cluster falls below the threshold are treated as unclustered
singletons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.tables import format_count, format_mean_std


class Partition:
    """A clustering of ``n`` vertices given as dense labels.

    Vertices with the same label are in the same group; every vertex has a
    label (unclustered vertices are singleton groups).
    """

    def __init__(self, labels: np.ndarray) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValueError("labels must be 1-D")
        if labels.size and labels.min() < 0:
            raise ValueError("labels must be nonnegative")
        self.labels = labels

    @classmethod
    def from_clusters(cls, clusters: list[np.ndarray], n_vertices: int) -> "Partition":
        """Build from disjoint cluster lists; uncovered vertices become
        singletons."""
        labels = np.full(n_vertices, -1, dtype=np.int64)
        for i, members in enumerate(clusters):
            members = np.asarray(members, dtype=np.int64)
            if members.size and np.any(labels[members] >= 0):
                raise ValueError("clusters overlap; Partition requires disjoint groups")
            labels[members] = i
        next_label = len(clusters)
        for v in np.flatnonzero(labels < 0):
            labels[v] = next_label
            next_label += 1
        return cls(labels)

    @property
    def n_vertices(self) -> int:
        return int(self.labels.size)

    def group_sizes(self) -> np.ndarray:
        """Size of every group (including singletons)."""
        return np.bincount(self.labels) if self.labels.size else np.zeros(0, dtype=np.int64)

    def groups(self, min_size: int = 1) -> list[np.ndarray]:
        """Member arrays of groups with ``size >= min_size``."""
        order = np.argsort(self.labels, kind="stable")
        sorted_labels = self.labels[order]
        boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
        return [np.sort(g) for g in np.split(order, boundaries)
                if g.size >= min_size]

    def filtered(self, min_size: int) -> "Partition":
        """Apply the reporting filter: dissolve groups below ``min_size``.

        Dissolved vertices become singletons, matching how unreported
        sequences enter the pairwise quality comparison.
        """
        sizes = self.group_sizes()
        keep = sizes[self.labels] >= min_size
        new_labels = np.empty_like(self.labels)
        # Kept groups keep a shared (relabeled) id; dissolved become unique.
        kept_labels = self.labels[keep]
        _, dense = np.unique(kept_labels, return_inverse=True)
        new_labels[keep] = dense
        n_kept_groups = int(dense.max()) + 1 if dense.size else 0
        n_dissolved = int((~keep).sum())
        new_labels[~keep] = n_kept_groups + np.arange(n_dissolved, dtype=np.int64)
        return Partition(new_labels)

    def n_groups(self, min_size: int = 1) -> int:
        sizes = self.group_sizes()
        return int((sizes >= min_size).sum())

    def n_clustered(self, min_size: int = 2) -> int:
        """Vertices included in groups of at least ``min_size``."""
        sizes = self.group_sizes()
        return int(sizes[sizes >= min_size].sum())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self.labels, other.labels)

    def __repr__(self) -> str:
        return (f"Partition(n_vertices={self.n_vertices}, "
                f"n_groups(>=2)={self.n_groups(min_size=2)})")


@dataclass(frozen=True)
class PartitionStats:
    """Table IV's row for one partition."""

    name: str
    n_groups: int
    n_sequences: int
    largest_group: int
    avg_group: float
    std_group: float

    def table_row(self) -> list[str]:
        return [
            self.name,
            format_count(self.n_groups),
            format_count(self.n_sequences),
            format_count(self.largest_group),
            format_mean_std(self.avg_group, self.std_group),
        ]


def partition_stats(partition: Partition, name: str, min_size: int = 20) -> PartitionStats:
    """Table IV statistics: groups of ``size >= min_size`` only."""
    sizes = partition.group_sizes()
    sizes = sizes[sizes >= min_size]
    if sizes.size == 0:
        return PartitionStats(name, 0, 0, 0, 0.0, 0.0)
    return PartitionStats(
        name=name,
        n_groups=int(sizes.size),
        n_sequences=int(sizes.sum()),
        largest_group=int(sizes.max()),
        avg_group=float(sizes.mean()),
        std_group=float(sizes.std()),
    )
