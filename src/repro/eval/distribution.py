"""Group-size distributions (Figure 5).

Figure 5(a) plots the number of groups per size bin; Figure 5(b) plots the
number of sequences per size bin, for the gpClust and GOS partitions.  The
bins follow the paper's axis labels:

    20-49, 50-99, 100-199, 200-499, 500-999, 1000-2000, >2000
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.partition import Partition

#: (low, high) inclusive bin bounds from Figure 5; None means unbounded.
FIG5_BINS: tuple[tuple[int, int | None], ...] = (
    (20, 49),
    (50, 99),
    (100, 199),
    (200, 499),
    (500, 999),
    (1000, 2000),
    (2001, None),
)


def bin_label(bounds: tuple[int, int | None]) -> str:
    lo, hi = bounds
    return f">{lo - 1}" if hi is None else f"{lo}-{hi}"


@dataclass(frozen=True)
class SizeDistribution:
    """Per-bin group counts and sequence counts for one partition."""

    bins: tuple[tuple[int, int | None], ...]
    group_counts: np.ndarray      # Figure 5(a) series
    sequence_counts: np.ndarray   # Figure 5(b) series

    def labels(self) -> list[str]:
        return [bin_label(b) for b in self.bins]

    @property
    def total_groups(self) -> int:
        return int(self.group_counts.sum())

    @property
    def total_sequences(self) -> int:
        return int(self.sequence_counts.sum())


def size_distribution(partition: Partition,
                      bins: tuple[tuple[int, int | None], ...] = FIG5_BINS) -> SizeDistribution:
    """Histogram group sizes into the Figure 5 bins."""
    sizes = partition.group_sizes()
    group_counts = np.zeros(len(bins), dtype=np.int64)
    seq_counts = np.zeros(len(bins), dtype=np.int64)
    for i, (lo, hi) in enumerate(bins):
        mask = sizes >= lo if hi is None else (sizes >= lo) & (sizes <= hi)
        group_counts[i] = int(mask.sum())
        seq_counts[i] = int(sizes[mask].sum())
    return SizeDistribution(bins=bins, group_counts=group_counts,
                            sequence_counts=seq_counts)
