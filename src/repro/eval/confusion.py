"""Pairwise confusion counting and the Table III quality scores.

Section IV-D classifies every sequence pair (s_i, s_j) by whether the test
partition ("t") and the benchmark partition ("b") co-cluster it:

* TP: co-clustered in both; FP: only in test; FN: only in benchmark;
* TN: in neither,

then derives PPV, NPV, SP, SE (Equations 2-5).

Enumerating all C(n, 2) pairs is infeasible at 2M sequences; the counts are
instead computed from the contingency table of the two partitions:

* ``TP = sum over contingency cells of C(n_ij, 2)``
* ``TP + FP = sum over test groups of C(size, 2)``
* ``TP + FN = sum over benchmark groups of C(size, 2)``
* ``TN = C(n, 2) - TP - FP - FN``

which is exact and O(n log n).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.partition import Partition
from repro.util.tables import format_percent


def _pairs(counts: np.ndarray) -> int:
    """Sum of C(c, 2) over a counts array, in exact Python ints."""
    c = counts.astype(object)
    return int((c * (c - 1) // 2).sum())


@dataclass(frozen=True)
class PairConfusion:
    """Pairwise TP/FP/FN/TN counts between two partitions."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn


@dataclass(frozen=True)
class QualityScores:
    """PPV/NPV/SP/SE (Equations 2-5) plus the raw confusion counts."""

    confusion: PairConfusion
    ppv: float
    npv: float
    specificity: float
    sensitivity: float

    def table_row(self, name: str) -> list[str]:
        return [
            name,
            format_percent(self.ppv),
            format_percent(self.npv),
            format_percent(self.specificity),
            format_percent(self.sensitivity),
        ]


def pair_confusion(test: Partition, benchmark: Partition) -> PairConfusion:
    """Exact pairwise confusion counts via the contingency table."""
    if test.n_vertices != benchmark.n_vertices:
        raise ValueError(
            f"partitions cover different universes: {test.n_vertices} vs "
            f"{benchmark.n_vertices}")
    n = test.n_vertices
    if n < 2:
        return PairConfusion(0, 0, 0, 0)

    t = test.labels
    b = benchmark.labels
    # Contingency cell sizes: count of identical (t, b) label pairs.
    key = t.astype(np.int64) * (int(b.max()) + 1) + b
    _, cell_counts = np.unique(key, return_counts=True)

    tp = _pairs(cell_counts)
    tp_fp = _pairs(np.bincount(t))
    tp_fn = _pairs(np.bincount(b))
    total = n * (n - 1) // 2
    fp = tp_fp - tp
    fn = tp_fn - tp
    tn = total - tp - fp - fn
    return PairConfusion(tp=tp, fp=fp, fn=fn, tn=tn)


def quality_scores(test: Partition, benchmark: Partition,
                   min_size: int | None = 20,
                   filter_benchmark: bool = False) -> QualityScores:
    """Table III scores of a test partition against the benchmark.

    Parameters
    ----------
    test, benchmark:
        Partitions over the same universe.
    min_size:
        Reporting filter applied to the *test* partition (the paper uses
        clusters of size >= 20 only); None disables filtering.
    filter_benchmark:
        Whether to apply the same filter to the benchmark (the paper's
        benchmark families are all large, so the default leaves it as is).
    """
    if min_size is not None:
        test = test.filtered(min_size)
        if filter_benchmark:
            benchmark = benchmark.filtered(min_size)
    conf = pair_confusion(test, benchmark)

    def ratio(num: int, den: int) -> float:
        return num / den if den else 1.0

    return QualityScores(
        confusion=conf,
        ppv=ratio(conf.tp, conf.tp + conf.fp),
        npv=ratio(conf.tn, conf.fn + conf.tn),
        specificity=ratio(conf.tn, conf.fp + conf.tn),
        sensitivity=ratio(conf.tp, conf.tp + conf.fn),
    )
