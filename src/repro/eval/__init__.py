"""Quality evaluation: the measurements of Section IV-D.

* :class:`Partition` — a clustering over a fixed vertex universe, with the
  paper's ``size >= 20`` reporting filter;
* :func:`pair_confusion` + :class:`QualityScores` — pairwise TP/FP/FN/TN
  classification and the derived PPV/NPV/SP/SE (Equations 2-5, Table III);
* :func:`cluster_densities` — intra-cluster density (Equation 6);
* :func:`size_distribution` — the Figure 5 group-size and sequence-count
  histograms;
* :func:`partition_stats` — the Table IV partition statistics.
"""

from repro.eval.confusion import PairConfusion, QualityScores, pair_confusion, quality_scores
from repro.eval.density import cluster_densities, density_summary
from repro.eval.distribution import FIG5_BINS, size_distribution
from repro.eval.external import (
    adjusted_rand_index,
    normalized_mutual_information,
    pair_f1,
    purity,
)
from repro.eval.partition import Partition, partition_stats
from repro.eval.report import ComparisonReport, MethodReport

__all__ = [
    "ComparisonReport",
    "FIG5_BINS",
    "MethodReport",
    "PairConfusion",
    "Partition",
    "QualityScores",
    "adjusted_rand_index",
    "cluster_densities",
    "density_summary",
    "normalized_mutual_information",
    "pair_confusion",
    "pair_f1",
    "partition_stats",
    "purity",
    "quality_scores",
    "size_distribution",
]
