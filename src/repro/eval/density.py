"""Intra-cluster density (Equation 6).

``density = #(edges in a cluster) / (total number of possible edges)`` —
the paper uses it to show gpClust clusters (0.75 ± 0.28) are tighter than
the GOS partition's (0.40 ± 0.27), with the loosely-defined benchmark
families at only 0.09 ± 0.12.  The paper also warns that density alone
cannot rank methods (all-singletons would score 1.0), so this module scores
only clusters above a size threshold.
"""

from __future__ import annotations

import numpy as np

from repro.eval.partition import Partition
from repro.graph.csr import CSRGraph


def cluster_densities(graph: CSRGraph, partition: Partition,
                      min_size: int = 20) -> np.ndarray:
    """Density of each group with ``size >= min_size``.

    Returns one density per qualifying group, ordered by group label.
    """
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition universe must match graph vertex count")
    labels = partition.labels
    sizes = partition.group_sizes()
    # Density is undefined for singletons (0 possible edges); they are
    # excluded regardless of min_size.
    qualifying = np.flatnonzero(sizes >= max(min_size, 2))
    if qualifying.size == 0:
        return np.zeros(0, dtype=np.float64)

    edges = graph.edges()
    same = labels[edges[:, 0]] == labels[edges[:, 1]]
    internal = np.bincount(labels[edges[:, 0]][same], minlength=sizes.size)

    k = sizes[qualifying].astype(np.float64)
    possible = k * (k - 1) / 2.0
    return internal[qualifying] / possible


def density_summary(graph: CSRGraph, partition: Partition,
                    min_size: int = 20) -> tuple[float, float]:
    """``(mean, std)`` of qualifying cluster densities — the paper's
    ``0.75 ± 0.28`` style numbers."""
    densities = cluster_densities(graph, partition, min_size=min_size)
    if densities.size == 0:
        return 0.0, 0.0
    return float(densities.mean()), float(densities.std())
