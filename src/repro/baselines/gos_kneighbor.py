"""GOS k-neighbor linkage clustering.

The comparator of the paper's quality study: "To compute the protein family
relationship, the GOS team used a k-neighbor linkage (k=10) based graph
heuristic" — "two vertices are included into a cluster if they share a fixed
number (k) of neighbors" (Section IV-D).

We implement it as: link every *adjacent* pair (u, v) with
``|Γ(u) ∩ Γ(v)| >= k``, then report connected components of the linked
relation.  Restricting candidate pairs to graph edges matches the GOS
pipeline, where only sequence pairs with detected similarity are considered
for linkage, and keeps the computation at one triangle-count per edge.

The paper's criticism of this method — a fixed k falsely fuses large dense
clusters connected by well-shared bridges, and is blind to clusters whose
members cannot share k neighbors (small or sparse ones) — falls out of the
definition and is what the Table III/IV benches demonstrate.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.components import _canonicalize, _cc_label_propagation
from repro.graph.csr import CSRGraph


def shared_neighbor_counts(graph: CSRGraph, edges: np.ndarray | None = None) -> np.ndarray:
    """Number of common neighbors of each edge's endpoints.

    Computed sparsely as the triangle support of each edge:
    ``count(u, v) = (A @ A)[u, v]`` restricted to edge positions.
    """
    if edges is None:
        edges = graph.edges()
    if edges.size == 0:
        return np.zeros(0, dtype=np.int64)
    n = graph.n_vertices
    a = sp.csr_matrix(
        (np.ones(graph.nnz, dtype=np.int64), graph.indices, graph.indptr),
        shape=(n, n))
    a2 = (a @ a).tocsr()
    counts = np.asarray(a2[edges[:, 0], edges[:, 1]]).ravel().astype(np.int64)
    return counts


def gos_kneighbor_clustering(graph: CSRGraph, k: int = 10) -> np.ndarray:
    """GOS k-neighbor linkage; returns dense per-vertex cluster labels.

    Vertices never linked end up in singleton clusters.  ``k=10`` is the
    GOS project's published setting.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    edges = graph.edges()
    counts = shared_neighbor_counts(graph, edges)
    linked = edges[counts >= k]
    raw = _cc_label_propagation(graph.n_vertices, linked[:, 0], linked[:, 1])
    return _canonicalize(raw)
