"""Brute-force pairwise neighborhood-Jaccard clustering.

Section III-B motivates Shingling against exactly this method: "a brute-force
way to detect vertices that are part of the same dense subgraph would be to
compute the Jaccard Index ... for every pair of vertices.  This pairwise
neighbor comparison method leads to an expensive quadratical computation."

It is implemented here (a) as the oracle that small-graph tests compare the
Shingling heuristic's recall against, and (b) as the quadratic baseline of
the ablation benches.  Only suitable for graphs of a few thousand vertices.
"""

from __future__ import annotations

import numpy as np

from repro.graph.components import _canonicalize, _cc_label_propagation
from repro.graph.csr import CSRGraph

#: Refuse to go quadratic beyond this many vertices.
MAX_BRUTE_FORCE_VERTICES = 20_000


def jaccard_matrix(graph: CSRGraph) -> np.ndarray:
    """Dense ``(n, n)`` matrix of pairwise neighborhood Jaccard indices.

    ``J[u, v] = |Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|`` (Equation 1); 0 when both
    neighborhoods are empty.
    """
    n = graph.n_vertices
    if n > MAX_BRUTE_FORCE_VERTICES:
        raise ValueError(
            f"brute-force Jaccard is quadratic; refusing n={n} > "
            f"{MAX_BRUTE_FORCE_VERTICES}")
    adj = np.zeros((n, n), dtype=np.int64)
    owner = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    adj[owner, graph.indices] = 1
    inter = adj @ adj.T
    deg = graph.degrees()
    union = deg[:, None] + deg[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        j = np.where(union > 0, inter / np.maximum(union, 1), 0.0)
    return j


def jaccard_bruteforce_clustering(graph: CSRGraph, threshold: float = 0.5,
                                  require_edge: bool = True) -> np.ndarray:
    """Cluster by linking pairs with neighborhood Jaccard >= ``threshold``.

    Parameters
    ----------
    graph:
        Input similarity graph.
    threshold:
        Minimum Jaccard index to link a pair.
    require_edge:
        When True (default), only adjacent pairs can link — the variant
        comparable to the other methods; when False, any vertex pair may
        link (the pure Gibson-style dense-subgraph relation).

    Returns
    -------
    np.ndarray
        Dense per-vertex cluster labels (connected components of the linked
        relation).
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    j = jaccard_matrix(graph)
    iu, ju = np.triu_indices(graph.n_vertices, k=1)
    linked = j[iu, ju] >= threshold
    if require_edge:
        owner = np.repeat(np.arange(graph.n_vertices, dtype=np.int64),
                          graph.degrees())
        adj = np.zeros(j.shape, dtype=bool)
        adj[owner, graph.indices] = True
        linked &= adj[iu, ju]
    raw = _cc_label_propagation(graph.n_vertices, iu[linked], ju[linked])
    return _canonicalize(raw)
