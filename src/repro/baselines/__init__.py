"""Comparator clustering methods.

* :func:`gos_kneighbor_clustering` — the GOS project's k-neighbor linkage
  (Yooseph et al. 2007), the method Table III/IV compares gpClust against;
* :func:`jaccard_bruteforce_clustering` — the quadratic pairwise
  neighborhood-Jaccard method Section III-B motivates Shingling against;
* :func:`single_linkage_clustering` — plain connected components, the
  trivial lower bound (and pClust's decomposition step).
"""

from repro.baselines.gos_kneighbor import gos_kneighbor_clustering, shared_neighbor_counts
from repro.baselines.jaccard import jaccard_bruteforce_clustering, jaccard_matrix
from repro.baselines.single_linkage import single_linkage_clustering

__all__ = [
    "gos_kneighbor_clustering",
    "jaccard_bruteforce_clustering",
    "jaccard_matrix",
    "shared_neighbor_counts",
    "single_linkage_clustering",
]
