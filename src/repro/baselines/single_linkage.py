"""Single-linkage (connected components) clustering.

The trivial baseline: every connected component is one cluster.  This is
also the decomposition pClust applies before Shingling ("connected component
detection is applied to the input graph to break down the large problem
instance"), so it doubles as an upper bound on how much any of the
edge-respecting methods here can merge.
"""

from __future__ import annotations

import numpy as np

from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph


def single_linkage_clustering(graph: CSRGraph) -> np.ndarray:
    """Per-vertex labels: one cluster per connected component."""
    return connected_components(graph)
