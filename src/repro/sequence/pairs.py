"""Vectorized group-to-pairs expansion shared by the candidate-pair filters.

Both pair filters — the k-mer seed index and the generalized-suffix-array
maximal-match filter — end with the same combinatorial step: groups of
sequence ids that share a seed (or an LCP run) are expanded into all
within-group pairs, then deduplicated and thresholded on how many groups
each pair appeared in.  This module holds the one loop-free implementation
of that triangle expansion plus the single-sort pair reduction, so neither
filter carries its own copy.
"""

from __future__ import annotations

import numpy as np


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=out[1:])
    return out


def expand_group_pairs(members: np.ndarray, starts: np.ndarray,
                       sizes: np.ndarray) -> np.ndarray:
    """All ordered within-group pairs, fully vectorized.

    Parameters
    ----------
    members:
        Flat array holding every group's members back to back.  Members
        must be sorted ascending *within* each group (so emitted pairs obey
        ``a < b`` when members are distinct).
    starts / sizes:
        Per-group offset into ``members`` and group length.  Groups need
        not tile ``members``; filtered subsets are fine.

    Returns
    -------
    np.ndarray
        ``(sum_g size_g*(size_g-1)/2, 2)`` array: for each group, every
        member pair ``(members[x], members[y])`` with ``x < y`` (local),
        groups in order, pairs in row-major triangle order.
    """
    members = np.asarray(members, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0 or members.size == 0:
        return np.empty((0, 2), dtype=np.int64)

    # Element level: local position p of each member within its group.
    n_elems = int(sizes.sum())
    elem_group_start = np.repeat(_exclusive_cumsum(sizes), sizes)
    local = np.arange(n_elems, dtype=np.int64) - elem_group_start
    elem_pos = np.repeat(starts, sizes) + local          # index into members
    # Member at local position p partners every later member: g - 1 - p
    # pairs with itself as the left element.
    reps = np.repeat(sizes, sizes) - 1 - local

    # Pair level: for each left element, right elements are the following
    # run of reps[e] members; cumsum arithmetic yields the run-local index.
    total = int(reps.sum())
    if total == 0:
        return np.empty((0, 2), dtype=np.int64)
    left = np.repeat(elem_pos, reps)
    run_start = np.repeat(_exclusive_cumsum(reps), reps)
    offset = np.arange(total, dtype=np.int64) - run_start
    right = left + 1 + offset
    return np.stack([members[left], members[right]], axis=1)


def dedupe_count_pairs(pairs: np.ndarray, n: int,
                       min_count: int = 1) -> np.ndarray:
    """Unique sorted pairs occurring at least ``min_count`` times.

    Packs each ``(a, b)`` row into the dense key ``a * n + b`` and finds
    run lengths with a single sort — equivalent to ``np.unique(...,
    return_counts=True)`` but without the second pass the unique/inverse
    machinery performs.

    Returns ``(m, 2)`` rows sorted lexicographically (the key order).
    """
    if pairs.shape[0] == 0:
        return np.empty((0, 2), dtype=np.int64)
    keys = pairs[:, 0] * np.int64(n) + pairs[:, 1]
    keys.sort(kind="stable")
    boundary = np.empty(keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    run_starts = np.flatnonzero(boundary)
    if min_count > 1:
        run_lengths = np.diff(np.append(run_starts, keys.size))
        run_starts = run_starts[run_lengths >= min_count]
    qualified = keys[run_starts]
    return np.stack([qualified // n, qualified % n], axis=1)
