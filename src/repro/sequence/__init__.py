"""Sequence substrate: the pGraph analogue.

The paper's input graphs come from pGraph [25]: pairs of putative ORFs are
pre-filtered by a maximal-exact-match heuristic and then aligned with the
optimality-guaranteeing Smith-Waterman algorithm; sufficiently similar pairs
become edges of the similarity graph that gpClust clusters.

Neither the GOS sequence data nor pGraph itself is available, so this package
implements the full equivalent pipeline from scratch:

* amino-acid alphabet and integer encoding (:mod:`repro.sequence.alphabet`);
* FASTA I/O (:mod:`repro.sequence.fasta`);
* BLOSUM62 scoring (:mod:`repro.sequence.scoring`);
* a synthetic protein-family generator — ancestral sequences, divergence by
  substitution/indel, optional shotgun-style fragmenting
  (:mod:`repro.sequence.generator`);
* Smith-Waterman local alignment: scalar references and batched row-scan
  vectorized implementations (:mod:`repro.sequence.smith_waterman`);
* a k-mer seed filter standing in for pGraph's suffix-tree maximal-match
  pair generation (:mod:`repro.sequence.kmer_filter`), sharing its
  group-to-pairs expansion with the suffix-array filter
  (:mod:`repro.sequence.pairs`);
* a shared-memory sequence arena for multi-process alignment workers
  (:mod:`repro.sequence.arena`);
* homology-graph construction tying it together, serial or sharded across
  a process pool with bit-identical output
  (:mod:`repro.sequence.homology`).
"""

from repro.sequence.alphabet import AMINO_ACIDS, decode, encode
from repro.sequence.arena import SequenceArena
from repro.sequence.fasta import read_fasta, write_fasta
from repro.sequence.generator import SequenceFamilyConfig, SyntheticProteinSet, generate_protein_families
from repro.sequence.homology import (
    HomologyConfig,
    HomologyResult,
    HomologyTimings,
    build_homology_graph,
)
from repro.sequence.kmer_filter import candidate_pairs
from repro.sequence.profile import (
    Profile,
    build_profile,
    expand_cluster,
    profile_score,
)
from repro.sequence.scoring import BLOSUM62, blosum62_matrix
from repro.sequence.suffix import GeneralizedSuffixArray, candidate_pairs_suffix
from repro.sequence.smith_waterman import (
    batch_self_scores,
    batch_smith_waterman,
    sw_score_affine,
    sw_score_linear,
    sw_align,
)

__all__ = [
    "AMINO_ACIDS",
    "BLOSUM62",
    "GeneralizedSuffixArray",
    "HomologyConfig",
    "HomologyResult",
    "HomologyTimings",
    "Profile",
    "SequenceArena",
    "SequenceFamilyConfig",
    "SyntheticProteinSet",
    "batch_self_scores",
    "batch_smith_waterman",
    "blosum62_matrix",
    "build_homology_graph",
    "build_profile",
    "candidate_pairs",
    "candidate_pairs_suffix",
    "decode",
    "encode",
    "expand_cluster",
    "generate_protein_families",
    "profile_score",
    "read_fasta",
    "sw_align",
    "sw_score_affine",
    "sw_score_linear",
    "write_fasta",
]
