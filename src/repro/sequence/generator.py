"""Synthetic metagenomic protein set generator.

Models what a metagenomics survey delivers to the clustering pipeline:
families of homologous ORFs of varying divergence, plus unrelated singleton
sequences (the "dark matter" fraction), optionally shredded into
shotgun-style fragments.

Each family derives from a random ancestor; *core* members diverge mildly
(sequence-similarity-detectable, the paper's "core sets"), *peripheral*
members diverge strongly (only profile-level methods would relate them —
they usually fail the alignment threshold, reproducing the benchmark's
high-PPV / low-SE structure at the sequence level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequence.alphabet import decode, random_sequence
from repro.sequence.mutate import diverge
from repro.util.rng import spawn_rng


@dataclass(frozen=True)
class SequenceFamilyConfig:
    """Knobs of the synthetic protein set.

    Attributes
    ----------
    n_families:
        Number of homologous families.
    family_size_median / family_size_sigma:
        Lognormal family sizes (min 3).
    ancestor_length:
        (low, high) residue-length range of family ancestors.
    core_fraction:
        Share of each family that diverges mildly (core members).
    core_divergence / periphery_divergence:
        Per-residue substitution rates for core and peripheral members.
    indel_rate:
        Per-residue indel event rate.
    singleton_fraction:
        Unrelated random sequences added on top, as a fraction of the
        family-sequence count.
    fragment:
        When True, emit shotgun-style fragments: each member is a random
        window of ``fragment_length`` residues from its full sequence.
    fragment_length:
        (low, high) fragment window size.
    """

    n_families: int = 12
    family_size_median: float = 14.0
    family_size_sigma: float = 0.6
    ancestor_length: tuple[int, int] = (120, 260)
    core_fraction: float = 0.6
    core_divergence: float = 0.10
    periphery_divergence: float = 0.55
    indel_rate: float = 0.01
    singleton_fraction: float = 0.15
    fragment: bool = False
    fragment_length: tuple[int, int] = (60, 120)

    def __post_init__(self) -> None:
        if self.n_families < 1:
            raise ValueError("n_families must be >= 1")
        for name in ("core_fraction", "core_divergence",
                     "periphery_divergence", "indel_rate",
                     "singleton_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.ancestor_length[0] < 10 or self.ancestor_length[1] < self.ancestor_length[0]:
            raise ValueError("invalid ancestor_length range")
        if self.fragment_length[0] < 10 or self.fragment_length[1] < self.fragment_length[0]:
            raise ValueError("invalid fragment_length range")


@dataclass
class SyntheticProteinSet:
    """Generated sequences plus their ground truth.

    ``family_labels[i]`` is the family of sequence ``i``; singletons get
    unique labels after the family range.  ``is_core[i]`` marks mildly
    diverged members.
    """

    sequences: list[np.ndarray]
    family_labels: np.ndarray
    is_core: np.ndarray
    config: SequenceFamilyConfig
    seed: int

    @property
    def n_sequences(self) -> int:
        return len(self.sequences)

    def as_fasta_records(self) -> list[tuple[str, str]]:
        """``(header, sequence-string)`` records with ground truth headers."""
        records = []
        for i, codes in enumerate(self.sequences):
            role = "core" if self.is_core[i] else "periphery"
            header = f"seq{i} family={self.family_labels[i]} role={role}"
            records.append((header, decode(codes)))
        return records


def generate_protein_families(config: SequenceFamilyConfig | None = None,
                              seed: int = 0) -> SyntheticProteinSet:
    """Generate a synthetic protein set (see module docstring)."""
    config = config or SequenceFamilyConfig()
    rng = spawn_rng(seed, "sequences")

    sizes = np.exp(rng.normal(np.log(config.family_size_median),
                              config.family_size_sigma,
                              size=config.n_families))
    sizes = np.maximum(np.round(sizes).astype(np.int64), 3)

    sequences: list[np.ndarray] = []
    labels: list[int] = []
    core_flags: list[bool] = []

    for fam, size in enumerate(sizes.tolist()):
        length = int(rng.integers(config.ancestor_length[0],
                                  config.ancestor_length[1] + 1))
        ancestor = random_sequence(length, rng)
        n_core = max(2, int(round(config.core_fraction * size)))
        for i in range(size):
            rate = (config.core_divergence if i < n_core
                    else config.periphery_divergence)
            member = diverge(ancestor, rate, config.indel_rate, rng)
            if config.fragment:
                member = _fragment(member, config.fragment_length, rng)
            sequences.append(member)
            labels.append(fam)
            core_flags.append(i < n_core)

    n_singletons = int(round(config.singleton_fraction * len(sequences)))
    next_label = config.n_families
    for _ in range(n_singletons):
        length = int(rng.integers(config.ancestor_length[0],
                                  config.ancestor_length[1] + 1))
        member = random_sequence(length, rng)
        if config.fragment:
            member = _fragment(member, config.fragment_length, rng)
        sequences.append(member)
        labels.append(next_label)
        core_flags.append(False)
        next_label += 1

    return SyntheticProteinSet(
        sequences=sequences,
        family_labels=np.asarray(labels, dtype=np.int64),
        is_core=np.asarray(core_flags, dtype=bool),
        config=config,
        seed=seed,
    )


def _fragment(codes: np.ndarray, window: tuple[int, int],
              rng: np.random.Generator) -> np.ndarray:
    """A random shotgun-style window of the sequence."""
    length = int(rng.integers(window[0], window[1] + 1))
    if codes.size <= length:
        return codes
    start = int(rng.integers(0, codes.size - length + 1))
    return codes[start:start + length].copy()
