"""Sequence divergence models: substitutions and indels.

The synthetic family generator derives members from a family ancestor by
applying residue substitutions (at a configurable divergence rate) and
occasional short insertions/deletions — enough to exercise the aligner's
gap handling while keeping family members detectably homologous.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import AMINO_ACIDS


def substitute(codes: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Substitute each residue independently with probability ``rate``.

    Substitutions draw a uniformly random *different* residue, so ``rate``
    is the true expected divergence.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    out = codes.copy()
    hit = np.flatnonzero(rng.random(codes.size) < rate)
    if hit.size:
        # Draw from 19 alternatives and shift past the original residue.
        draws = rng.integers(0, len(AMINO_ACIDS) - 1, size=hit.size).astype(np.uint8)
        originals = out[hit]
        out[hit] = np.where(draws >= originals, draws + 1, draws).astype(np.uint8)
    return out


def indel(codes: np.ndarray, rate: float, rng: np.random.Generator,
          max_len: int = 3) -> np.ndarray:
    """Apply short insertions/deletions at the given per-residue rate.

    Each event is a deletion or insertion (equal probability) of
    1..``max_len`` residues.  Event positions are sampled on the original
    sequence and applied right-to-left so indices stay valid.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    if max_len < 1:
        raise ValueError("max_len must be >= 1")
    n_events = int(rng.binomial(max(codes.size, 1), rate))
    if n_events == 0:
        return codes.copy()
    out = codes.copy()
    positions = np.sort(rng.integers(0, max(out.size, 1), size=n_events))[::-1]
    for pos in positions.tolist():
        length = int(rng.integers(1, max_len + 1))
        if rng.random() < 0.5 and out.size > length:
            out = np.delete(out, slice(pos, min(pos + length, out.size)))
        else:
            insert = rng.integers(0, len(AMINO_ACIDS), size=length).astype(np.uint8)
            pos = min(pos, out.size)
            out = np.concatenate([out[:pos], insert, out[pos:]])
    return out


def diverge(codes: np.ndarray, substitution_rate: float, indel_rate: float,
            rng: np.random.Generator) -> np.ndarray:
    """Substitutions followed by indels — one family member's divergence."""
    return indel(substitute(codes, substitution_rate, rng), indel_rate, rng)
