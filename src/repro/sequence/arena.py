"""Shared-memory sequence arena for multi-process alignment workers.

pGraph distributes alignment work across processors; the expensive part of
doing that naively in Python is pickling the sequence list into every
worker. This module packs the whole sequence set once into a
:mod:`multiprocessing.shared_memory` block — a flat ``uint8`` residue
buffer plus an ``int64`` offsets table — so workers attach to the segment
by name and reconstruct zero-copy views of any sequence without any
per-task serialization.

Layout of the block::

    [ offsets : (n+1) * int64 ][ residues : total_len * uint8 ]

``offsets[i]:offsets[i+1]`` delimits sequence ``i`` within the residue
region. The arena owner (parent process) must outlive all attachments and
call :meth:`SequenceArena.close` (workers) / :meth:`SequenceArena.unlink`
(owner) when done; ``SequenceArena`` is also a context manager that does
the right one automatically.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

_OFFSET_DTYPE = np.int64


def flatten_sequences(
        sequences: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Pack a sequence set into flat CSR form: ``(residues, offsets)``.

    ``residues`` is one contiguous ``uint8`` buffer, ``offsets`` the
    ``(n+1,)`` int64 boundary table (``offsets[i]:offsets[i+1]`` delimits
    sequence ``i``).  This is the arena's wire layout without the shared-
    memory segment — the shape the device aligner uploads, and what
    :meth:`SequenceArena.pack` writes into its block.
    """
    lengths = np.fromiter((s.size for s in sequences), dtype=_OFFSET_DTYPE,
                          count=len(sequences))
    offsets = np.zeros(lengths.size + 1, dtype=_OFFSET_DTYPE)
    np.cumsum(lengths, out=offsets[1:])
    residues = np.empty(int(offsets[-1]), dtype=np.uint8)
    for i, seq in enumerate(sequences):
        residues[offsets[i]:offsets[i + 1]] = np.asarray(seq, dtype=np.uint8)
    return residues, offsets


class SequenceArena:
    """A sequence set packed into one shared-memory segment.

    Create with :meth:`pack` in the parent, re-open with :meth:`attach`
    in workers (using :attr:`name`). Sequences come back as zero-copy
    ``uint8`` views into the shared buffer.
    """

    def __init__(self, shm: shared_memory.SharedMemory, n_sequences: int,
                 owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.name = shm.name
        self.n_sequences = n_sequences
        header = (n_sequences + 1) * _OFFSET_DTYPE().itemsize
        self.offsets = np.ndarray(n_sequences + 1, dtype=_OFFSET_DTYPE,
                                  buffer=shm.buf[:header])
        total = int(self.offsets[-1])
        self.residues = np.ndarray(total, dtype=np.uint8,
                                   buffer=shm.buf[header:header + total])

    @classmethod
    def pack(cls, sequences: list[np.ndarray]) -> "SequenceArena":
        """Copy ``sequences`` into a fresh shared-memory segment (owner)."""
        lengths = np.array([s.size for s in sequences], dtype=_OFFSET_DTYPE)
        offsets = np.zeros(lengths.size + 1, dtype=_OFFSET_DTYPE)
        np.cumsum(lengths, out=offsets[1:])
        header = offsets.nbytes
        total = int(offsets[-1])
        # shared_memory rejects zero-size segments; always room for offsets.
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(header + total, 1))
        shm.buf[:header] = offsets.tobytes()
        arena = cls(shm, len(sequences), owner=True)
        for i, seq in enumerate(sequences):
            arena.residues[offsets[i]:offsets[i + 1]] = np.asarray(
                seq, dtype=np.uint8)
        return arena

    @classmethod
    def attach(cls, name: str, n_sequences: int) -> "SequenceArena":
        """Open an existing arena by segment name (worker side).

        On Python < 3.13 attaching also registers the segment with the
        resource tracker, which then unlinks it out from under the owner
        when this process exits.  Only the owner may own cleanup, so the
        registration is suppressed for the duration of the open.
        """
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        try:
            resource_tracker.register = lambda *a, **k: None
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
        return cls(shm, n_sequences, owner=False)

    def sequence(self, i: int) -> np.ndarray:
        """Zero-copy ``uint8`` view of sequence ``i``."""
        return self.residues[self.offsets[i]:self.offsets[i + 1]]

    def sequences(self) -> list[np.ndarray]:
        """Views of every sequence, in order."""
        return [self.sequence(i) for i in range(self.n_sequences)]

    def close(self) -> None:
        """Detach this process's mapping (does not free the segment)."""
        # Views into shm.buf must be dropped before close() or mmap refuses.
        self.offsets = None
        self.residues = None
        self._shm.close()

    def unlink(self) -> None:
        """Detach and free the segment. Owner only, call exactly once."""
        self.close()
        self._shm.unlink()

    def __enter__(self) -> "SequenceArena":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()
