"""Homology-graph construction: the end of the pGraph analogue.

Ties the sequence substrate together: seed candidate filtering, batched
Smith-Waterman on the surviving pairs, normalized-score thresholding, and
assembly of the undirected similarity graph the clustering stage consumes.

pGraph's central observation is that alignment dominates this stage, so it
distributes alignment work across processors.  We do the same: candidate
pairs are cut into contiguous shards and scored either in-process
(``n_jobs=1``) or by a process pool whose workers read sequences from a
shared-memory arena (:mod:`repro.sequence.arena`) — no sequence pickling,
and shard results stream back in order, so the output is bit-identical to
the serial path regardless of worker count.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import get_obs, timed, worker_tracer
from repro.sequence.arena import SequenceArena
from repro.sequence.kmer_filter import candidate_pairs
from repro.sequence.scoring import BLOSUM62
from repro.sequence.smith_waterman import (batch_self_scores,
                                           batch_smith_waterman,
                                           batch_smith_waterman_affine)


@dataclass(frozen=True)
class HomologyConfig:
    """Parameters of the homology pipeline.

    Attributes
    ----------
    pair_filter:
        Candidate-pair heuristic: ``"kmer"`` (shared k-mer seeds) or
        ``"suffix"`` (generalized-suffix-array maximal exact matches — the
        mechanism pGraph's suffix trees implement).
    k / min_shared_kmers / max_kmer_occurrence:
        Seed filter settings (see :func:`candidate_pairs`), kmer mode.
    min_match_len:
        Minimum exact-match length, suffix mode.
    gap_model / gap / gap_open / gap_extend:
        ``"linear"`` (penalty ``gap`` per gapped residue) or ``"affine"``
        (BLAST-style ``gap_open + (L-1) * gap_extend``); both run the
        batched row-scan aligner.
    min_normalized_score:
        A pair becomes an edge when ``sw / min(self_a, self_b)`` is at least
        this value.  Normalizing by the smaller self-score makes the
        threshold length-independent, the usual convention for fragment
        data.
    chunk_size:
        Alignment batch size.
    n_jobs:
        Alignment worker processes.  ``1`` scores shards in-process (the
        default), ``0`` means ``os.cpu_count()``.  Results are identical
        for every value.
    """

    pair_filter: str = "kmer"
    k: int = 5
    min_shared_kmers: int = 2
    max_kmer_occurrence: int = 200
    min_match_len: int = 8
    gap_model: str = "linear"
    gap: int = 8
    gap_open: int = 11
    gap_extend: int = 1
    min_normalized_score: float = 0.40
    chunk_size: int = 256
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.pair_filter not in ("kmer", "suffix"):
            raise ValueError(f"unknown pair_filter {self.pair_filter!r}")
        if self.gap_model not in ("linear", "affine"):
            raise ValueError(f"unknown gap_model {self.gap_model!r}")
        if not 0.0 < self.min_normalized_score <= 1.0:
            raise ValueError("min_normalized_score must be in (0, 1]")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.min_match_len < 1:
            raise ValueError("min_match_len must be >= 1")
        if self.n_jobs < 0:
            raise ValueError("n_jobs must be >= 0 (0 = cpu_count)")


@dataclass
class HomologyTimings:
    """Wall-clock seconds per homology stage (pGraph's cost breakdown)."""

    seed_filter_s: float = 0.0
    self_scores_s: float = 0.0
    alignment_s: float = 0.0
    graph_build_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (self.seed_filter_s + self.self_scores_s
                + self.alignment_s + self.graph_build_s)

    def as_dict(self) -> dict[str, float]:
        return {
            "seed_filter_s": self.seed_filter_s,
            "self_scores_s": self.self_scores_s,
            "alignment_s": self.alignment_s,
            "graph_build_s": self.graph_build_s,
            "total_s": self.total_s,
        }


@dataclass
class HomologyResult:
    """The similarity graph plus pipeline statistics.

    ``normalized_scores`` aligns with ``pairs`` row for row.  When the graph
    was built with ``keep_scores=False`` both arrays are empty — edges
    streamed into the CSR without retaining the per-candidate score vector —
    and only the counts remain.
    """

    graph: CSRGraph
    n_candidate_pairs: int
    n_edges: int
    normalized_scores: np.ndarray = field(repr=False)
    pairs: np.ndarray = field(repr=False)
    timings: HomologyTimings | None = field(default=None, repr=False)


# ---------------------------------------------------------------------- #
# Shard scoring (shared by the serial path and pool workers)
# ---------------------------------------------------------------------- #

def _score_shard(sequences, pairs, denom, matrix, config, keep_scores):
    """Align one contiguous shard of candidate pairs.

    Returns ``(normalized_or_none, kept_pairs, kept_scores)`` where the
    first element is the shard's full normalized-score vector only when
    ``keep_scores`` is set.
    """
    seqs_a = [sequences[i] for i in pairs[:, 0]]
    seqs_b = [sequences[j] for j in pairs[:, 1]]
    if config.gap_model == "affine":
        scores = batch_smith_waterman_affine(
            seqs_a, seqs_b, matrix=matrix, gap_open=config.gap_open,
            gap_extend=config.gap_extend, chunk_size=config.chunk_size)
    else:
        scores = batch_smith_waterman(seqs_a, seqs_b, matrix=matrix,
                                      gap=config.gap,
                                      chunk_size=config.chunk_size)
    normalized = scores / np.maximum(denom, 1)
    keep = normalized >= config.min_normalized_score
    return (normalized if keep_scores else None,
            pairs[keep], normalized[keep])


_WORKER: dict = {}


def _init_worker(arena_name, n_sequences, matrix, config, keep_scores,
                 trace=False):
    arena = SequenceArena.attach(arena_name, n_sequences)
    _WORKER["arena"] = arena
    _WORKER["sequences"] = arena.sequences()
    _WORKER["matrix"] = matrix
    _WORKER["config"] = config
    _WORKER["keep_scores"] = keep_scores
    # Each worker gets its own tracer (proc label "sw-worker-<pid>"); the
    # records ride back to the parent with the shard result and are merged
    # onto the parent timeline (perf_counter is system-wide monotonic).
    _WORKER["tracer"] = worker_tracer(trace, "sw-worker")


def _score_shard_remote(task):
    shard, pairs, denom = task
    tracer = _WORKER["tracer"]
    with tracer.span("homology.align.shard", shard=shard,
                     n_pairs=int(pairs.shape[0])):
        result = _score_shard(_WORKER["sequences"], pairs, denom,
                              _WORKER["matrix"], _WORKER["config"],
                              _WORKER["keep_scores"])
    return result + (tracer.drain(),)


def _shard_bounds(n_pairs: int, chunk_size: int, n_jobs: int):
    """Contiguous ``(lo, hi)`` shard bounds: ~4 shards per worker for load
    balance, but never smaller than one alignment chunk."""
    shard = max(chunk_size, -(-n_pairs // max(n_jobs * 4, 1)))
    return [(lo, min(lo + shard, n_pairs))
            for lo in range(0, n_pairs, shard)]


def _resolve_jobs(n_jobs: int) -> int:
    return n_jobs if n_jobs > 0 else (os.cpu_count() or 1)


# ---------------------------------------------------------------------- #
# Graph construction
# ---------------------------------------------------------------------- #

def build_homology_graph(sequences: list[np.ndarray],
                         config: HomologyConfig | None = None,
                         matrix: np.ndarray = BLOSUM62,
                         keep_scores: bool = True) -> HomologyResult:
    """Construct the similarity graph of a sequence set.

    Every candidate pair from the seed filter is aligned; pairs whose
    normalized Smith-Waterman score reaches the threshold become undirected
    edges.  With ``config.n_jobs != 1`` pair shards are scored by a process
    pool over a shared-memory sequence arena; output is bit-identical to
    the serial path.  With ``keep_scores=False`` only above-threshold
    edges are retained as shards complete, never the full score vector.
    """
    config = config or HomologyConfig()
    timings = HomologyTimings()
    n = len(sequences)
    obs = get_obs()
    tracer = obs.tracer
    metrics = obs.metrics
    t_start = tracer.clock() if tracer.enabled else 0.0

    with timed(tracer, "homology.seed_filter",
               filter=config.pair_filter) as stage:
        if config.pair_filter == "suffix":
            from repro.sequence.suffix import candidate_pairs_suffix

            pairs = candidate_pairs_suffix(
                sequences, min_match_len=config.min_match_len,
                max_run=config.max_kmer_occurrence)
        else:
            pairs = candidate_pairs(
                sequences, k=config.k, min_shared=config.min_shared_kmers,
                max_kmer_occurrence=config.max_kmer_occurrence)
        stage.set(n_pairs=int(pairs.shape[0]))
    timings.seed_filter_s = stage.elapsed

    n_pairs = int(pairs.shape[0])
    metrics.counter("homology.candidate_pairs").add(n_pairs)
    if n_pairs == 0:
        return HomologyResult(
            graph=CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64),
                                      n_vertices=n),
            n_candidate_pairs=0, n_edges=0,
            normalized_scores=np.zeros(0), pairs=pairs, timings=timings)

    # Self-scores, lazily: only sequences referenced by a candidate pair
    # are ever used as a denominator, so score just those in one batch.
    with timed(tracer, "homology.self_scores") as stage:
        refs = np.unique(pairs)
        selfs = np.zeros(n, dtype=np.int64)
        selfs[refs] = batch_self_scores([sequences[i] for i in refs], matrix)
        denom = np.minimum(selfs[pairs[:, 0]], selfs[pairs[:, 1]])
        stage.set(n_refs=int(refs.size))
    timings.self_scores_s = stage.elapsed

    n_jobs = _resolve_jobs(config.n_jobs)
    shards = _shard_bounds(n_pairs, config.chunk_size, n_jobs)
    score_blocks: list[np.ndarray] = []
    edge_blocks: list[np.ndarray] = []
    with timed(tracer, "homology.alignment", n_pairs=n_pairs,
               n_jobs=n_jobs, n_shards=len(shards)) as stage:
        if n_jobs > 1 and len(shards) > 1:
            tasks = [(i, pairs[lo:hi], denom[lo:hi])
                     for i, (lo, hi) in enumerate(shards)]
            ctx = (multiprocessing.get_context("fork")
                   if "fork" in multiprocessing.get_all_start_methods()
                   else multiprocessing.get_context())
            with SequenceArena.pack(sequences) as arena:
                with ctx.Pool(processes=min(n_jobs, len(shards)),
                              initializer=_init_worker,
                              initargs=(arena.name, n, matrix, config,
                                        keep_scores,
                                        tracer.enabled)) as pool:
                    # imap preserves shard order: deterministic merge.
                    for block, kept_pairs, _, spans in pool.imap(
                            _score_shard_remote, tasks):
                        if spans:
                            tracer.absorb(spans)
                        if keep_scores:
                            score_blocks.append(block)
                        edge_blocks.append(kept_pairs)
        else:
            for i, (lo, hi) in enumerate(shards):
                with tracer.span("homology.align.shard", shard=i,
                                 n_pairs=hi - lo):
                    block, kept_pairs, _ = _score_shard(
                        sequences, pairs[lo:hi], denom[lo:hi], matrix,
                        config, keep_scores)
                if keep_scores:
                    score_blocks.append(block)
                edge_blocks.append(kept_pairs)
    timings.alignment_s = stage.elapsed

    with timed(tracer, "homology.graph_build") as stage:
        edges = (np.concatenate(edge_blocks, axis=0) if edge_blocks
                 else np.empty((0, 2), dtype=np.int64))
        graph = CSRGraph.from_edges(edges, n_vertices=n)
        stage.set(n_edges=graph.n_edges)
    timings.graph_build_s = stage.elapsed

    metrics.counter("homology.edges_kept").add(graph.n_edges)
    metrics.counter("homology.pairs_dropped").add(n_pairs - graph.n_edges)
    if tracer.enabled:
        tracer.record("homology.build", t_start, tracer.clock(),
                      attrs={"n_sequences": n, "n_candidate_pairs": n_pairs,
                             "n_edges": graph.n_edges})

    if keep_scores:
        normalized = np.concatenate(score_blocks)
        pairs_out = pairs
    else:
        normalized = np.zeros(0)
        pairs_out = np.empty((0, 2), dtype=np.int64)
    return HomologyResult(
        graph=graph,
        n_candidate_pairs=n_pairs,
        n_edges=graph.n_edges,
        normalized_scores=normalized,
        pairs=pairs_out,
        timings=timings,
    )
