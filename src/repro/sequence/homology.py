"""Homology-graph construction: the end of the pGraph analogue.

Ties the sequence substrate together: seed candidate filtering, batched
Smith-Waterman on the surviving pairs, normalized-score thresholding, and
assembly of the undirected similarity graph the clustering stage consumes.

pGraph's central observation is that alignment dominates this stage, so it
distributes alignment work across processors.  We go one step further with
a *hybrid alignment scheduler* over three interchangeable backends:

``host``
    Batched row-scan kernels in-process (the serial reference).
``pool``
    Contiguous pair shards scored by a process pool whose workers read
    sequences from a shared-memory arena (:mod:`repro.sequence.arena`) —
    no sequence pickling, shard results stream back in order.
``device``
    The simulated-GPU offload (:class:`repro.device.alignment.DeviceAligner`):
    length-binned packing and ramped row-scan kernels, with the sequence
    upload overlapped with the seed-filter stage on a copy thread.

``HomologyConfig.align_backend`` picks one explicitly, or ``auto`` lets a
cost model choose per workload from the pair count, the total DP cell
volume, and measured per-backend throughput (an EMA updated after every
run).  ``auto`` only considers the pool when every worker would get at
least :data:`MIN_POOL_PAIRS_PER_WORKER` pairs — spawning processes for a
workload that small loses to serial outright.  All backends are
bit-identical; only the schedule differs.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import get_obs, timed, worker_tracer
from repro.sequence.arena import SequenceArena
from repro.sequence.kmer_filter import candidate_pairs
from repro.sequence.scoring import BLOSUM62
from repro.sequence.smith_waterman import (batch_self_scores,
                                           batch_smith_waterman,
                                           batch_smith_waterman_affine,
                                           orient_pair_lengths)

#: Valid values of :attr:`HomologyConfig.align_backend`.
ALIGN_BACKENDS = ("auto", "host", "pool", "device")

#: ``auto`` refuses to spawn a process pool unless every worker gets at
#: least this many pairs — below it, fork + arena setup costs more than
#: the whole serial alignment (the small-workload parallel regression).
MIN_POOL_PAIRS_PER_WORKER = 2000


@dataclass(frozen=True)
class HomologyConfig:
    """Parameters of the homology pipeline.

    Attributes
    ----------
    pair_filter:
        Candidate-pair heuristic: ``"kmer"`` (shared k-mer seeds) or
        ``"suffix"`` (generalized-suffix-array maximal exact matches — the
        mechanism pGraph's suffix trees implement).
    k / min_shared_kmers / max_kmer_occurrence:
        Seed filter settings (see :func:`candidate_pairs`), kmer mode.
    min_match_len:
        Minimum exact-match length, suffix mode.
    gap_model / gap / gap_open / gap_extend:
        ``"linear"`` (penalty ``gap`` per gapped residue) or ``"affine"``
        (BLAST-style ``gap_open + (L-1) * gap_extend``); both run the
        batched row-scan aligner.
    min_normalized_score:
        A pair becomes an edge when ``sw / min(self_a, self_b)`` is at least
        this value.  Normalizing by the smaller self-score makes the
        threshold length-independent, the usual convention for fragment
        data.
    chunk_size:
        Alignment batch size.
    n_jobs:
        Alignment worker processes.  ``1`` scores shards in-process (the
        default), ``0`` means ``os.cpu_count()``.  Results are identical
        for every value.
    align_backend:
        ``"host"``, ``"pool"``, ``"device"``, or ``"auto"`` (default) to
        let the scheduler choose (see :func:`choose_align_backend`).
        ``"pool"`` additionally needs ``n_jobs`` workers to use; with one
        worker it degrades to the host path.  Scores and edges are
        bit-identical across all backends.
    devices:
        Simulated device count for the device backend.  ``devices > 1``
        runs the offload on a :class:`repro.device.group.DeviceGroup`,
        distributing length-binned alignment bins across members; the
        ``auto`` cost model divides the device throughput estimate by this
        count.  Output is bit-identical for every value.
    """

    pair_filter: str = "kmer"
    k: int = 5
    min_shared_kmers: int = 2
    max_kmer_occurrence: int = 200
    min_match_len: int = 8
    gap_model: str = "linear"
    gap: int = 8
    gap_open: int = 11
    gap_extend: int = 1
    min_normalized_score: float = 0.40
    chunk_size: int = 256
    n_jobs: int = 1
    align_backend: str = "auto"
    devices: int = 1

    def __post_init__(self) -> None:
        if self.pair_filter not in ("kmer", "suffix"):
            raise ValueError(f"unknown pair_filter {self.pair_filter!r}")
        if self.align_backend not in ALIGN_BACKENDS:
            raise ValueError(
                f"unknown align_backend {self.align_backend!r}; "
                f"expected one of {ALIGN_BACKENDS}")
        if self.gap_model not in ("linear", "affine"):
            raise ValueError(f"unknown gap_model {self.gap_model!r}")
        if not 0.0 < self.min_normalized_score <= 1.0:
            raise ValueError("min_normalized_score must be in (0, 1]")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.min_match_len < 1:
            raise ValueError("min_match_len must be >= 1")
        if self.n_jobs < 0:
            raise ValueError("n_jobs must be >= 0 (0 = cpu_count)")
        if self.devices < 1:
            raise ValueError("devices must be >= 1")


@dataclass
class HomologyTimings:
    """Wall-clock seconds per homology stage (pGraph's cost breakdown)."""

    seed_filter_s: float = 0.0
    self_scores_s: float = 0.0
    alignment_s: float = 0.0
    graph_build_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (self.seed_filter_s + self.self_scores_s
                + self.alignment_s + self.graph_build_s)

    def as_dict(self) -> dict[str, float]:
        return {
            "seed_filter_s": self.seed_filter_s,
            "self_scores_s": self.self_scores_s,
            "alignment_s": self.alignment_s,
            "graph_build_s": self.graph_build_s,
            "total_s": self.total_s,
        }


@dataclass
class HomologyResult:
    """The similarity graph plus pipeline statistics.

    ``normalized_scores`` aligns with ``pairs`` row for row.  When the graph
    was built with ``keep_scores=False`` both arrays are empty — edges
    streamed into the CSR without retaining the per-candidate score vector —
    and only the counts remain.
    """

    graph: CSRGraph
    n_candidate_pairs: int
    n_edges: int
    normalized_scores: np.ndarray = field(repr=False)
    pairs: np.ndarray = field(repr=False)
    timings: HomologyTimings | None = field(default=None, repr=False)
    #: Backend that actually scored the pairs (None when nothing aligned).
    align_backend: str | None = None


# ---------------------------------------------------------------------- #
# Shard scoring (shared by the serial path and pool workers)
# ---------------------------------------------------------------------- #

def _score_shard(sequences, pairs, denom, matrix, config, keep_scores):
    """Align one contiguous shard of candidate pairs.

    Returns ``(normalized_or_none, kept_pairs, kept_scores)`` where the
    first element is the shard's full normalized-score vector only when
    ``keep_scores`` is set.
    """
    seqs_a = [sequences[i] for i in pairs[:, 0]]
    seqs_b = [sequences[j] for j in pairs[:, 1]]
    if config.gap_model == "affine":
        scores = batch_smith_waterman_affine(
            seqs_a, seqs_b, matrix=matrix, gap_open=config.gap_open,
            gap_extend=config.gap_extend, chunk_size=config.chunk_size)
    else:
        scores = batch_smith_waterman(seqs_a, seqs_b, matrix=matrix,
                                      gap=config.gap,
                                      chunk_size=config.chunk_size)
    normalized = scores / np.maximum(denom, 1)
    keep = normalized >= config.min_normalized_score
    return (normalized if keep_scores else None,
            pairs[keep], normalized[keep])


_WORKER: dict = {}


def _init_worker(arena_name, n_sequences, matrix, config, keep_scores,
                 trace=False):
    arena = SequenceArena.attach(arena_name, n_sequences)
    _WORKER["arena"] = arena
    _WORKER["sequences"] = arena.sequences()
    _WORKER["matrix"] = matrix
    _WORKER["config"] = config
    _WORKER["keep_scores"] = keep_scores
    # Each worker gets its own tracer (proc label "sw-worker-<pid>"); the
    # records ride back to the parent with the shard result and are merged
    # onto the parent timeline (perf_counter is system-wide monotonic).
    _WORKER["tracer"] = worker_tracer(trace, "sw-worker")


def _score_shard_remote(task):
    shard, pairs, denom = task
    tracer = _WORKER["tracer"]
    with tracer.span("homology.align.shard", shard=shard,
                     n_pairs=int(pairs.shape[0])):
        result = _score_shard(_WORKER["sequences"], pairs, denom,
                              _WORKER["matrix"], _WORKER["config"],
                              _WORKER["keep_scores"])
    return result + (tracer.drain(),)


def _shard_bounds(n_pairs: int, chunk_size: int, n_jobs: int):
    """Contiguous ``(lo, hi)`` shard bounds: ~4 shards per worker for load
    balance, but never smaller than one alignment chunk.

    A single worker gets a single shard — sharding exists only to feed a
    pool, and splitting serial work adds per-shard span/merge overhead for
    nothing (the ``--jobs 1`` short-circuit).
    """
    if n_pairs <= 0:
        return []
    if n_jobs <= 1:
        return [(0, n_pairs)]
    shard = max(chunk_size, -(-n_pairs // max(n_jobs * 4, 1)))
    return [(lo, min(lo + shard, n_pairs))
            for lo in range(0, n_pairs, shard)]


def _resolve_jobs(n_jobs: int) -> int:
    return n_jobs if n_jobs > 0 else (os.cpu_count() or 1)


# ---------------------------------------------------------------------- #
# Hybrid alignment scheduler
# ---------------------------------------------------------------------- #

#: Priors for the scheduler's cost model, refined by measurement: DP cells
#: per second for the in-process row scan and the device bins, fixed setup
#: costs for the offload (upload + bin launches) and the pool (fork +
#: arena), and the fraction of linear scaling a pool worker typically
#: achieves (scatter/merge and memory-bandwidth sharing eat the rest).
_HOST_CELLS_PER_S = 1.8e8
_DEVICE_CELLS_PER_S = 3.0e8
_DEVICE_FIXED_S = 3e-3
_POOL_SPAWN_S = 0.25
_POOL_EFFICIENCY = 0.7

_throughput_lock = threading.Lock()
_measured_cells_per_s: dict[str, float] = {}


def observe_alignment_throughput(backend: str, cells: int,
                                 seconds: float) -> None:
    """Feed a measured alignment back into the scheduler's cost model.

    Keeps an exponential moving average (alpha 0.5) of DP cells per second
    per backend, so the second run on a machine schedules from measured
    rates instead of priors.  Pool rates are aggregate (spawn included).
    """
    if cells <= 0 or seconds <= 0:
        return
    rate = cells / seconds
    with _throughput_lock:
        prev = _measured_cells_per_s.get(backend)
        _measured_cells_per_s[backend] = (
            rate if prev is None else 0.5 * (prev + rate))


def _estimated_seconds(n_pairs: int, total_cells: int, n_jobs: int,
                       n_devices: int = 1) -> dict[str, float]:
    """Cost-model estimate per candidate backend, in seconds.

    ``n_devices`` scales the device estimate: a group's bins score
    concurrently, so throughput is roughly linear in the member count
    while the fixed setup (upload broadcast + bin launches) stays flat.
    """
    with _throughput_lock:
        measured = dict(_measured_cells_per_s)
    host_rate = measured.get("host", _HOST_CELLS_PER_S)
    device_rate = measured.get("device", _DEVICE_CELLS_PER_S)
    est = {
        "host": total_cells / host_rate,
        "device": (_DEVICE_FIXED_S
                   + total_cells / (device_rate * max(n_devices, 1))),
    }
    workers = min(_resolve_jobs(n_jobs), os.cpu_count() or 1)
    # The pool must clear three gates: real workers, enough pairs per
    # worker, and a serial runtime that dwarfs the spawn cost — a workload
    # the host finishes in a few spawn-times can only lose by forking
    # (the BENCH_PR6 pool-vs-host regression at small scale).
    if (workers > 1
            and n_pairs >= MIN_POOL_PAIRS_PER_WORKER * workers
            and est["host"] > 4 * _POOL_SPAWN_S):
        pool_rate = measured.get("pool")
        est["pool"] = (total_cells / pool_rate if pool_rate else
                       _POOL_SPAWN_S + total_cells
                       / (host_rate * workers * _POOL_EFFICIENCY))
    return est


def choose_align_backend(backend: str, n_pairs: int, total_cells: int,
                         n_jobs: int, n_devices: int = 1) -> str:
    """Resolve an ``align_backend`` setting to a concrete backend.

    Explicit settings are honored verbatim.  ``auto`` picks the cheapest
    backend under the cost model: total DP cells over (measured or prior)
    per-backend throughput plus fixed setup costs.  The pool is a
    candidate only when the *effective* worker count (``n_jobs`` capped by
    the machine's cores) exceeds one, every worker would receive at least
    :data:`MIN_POOL_PAIRS_PER_WORKER` pairs, and the serial estimate
    itself is several multiples of the pool's spawn cost — so ``auto``
    never forks for a workload small enough to lose to serial outright.
    ``n_devices > 1`` credits the device backend with near-linear bin
    throughput across the group.
    """
    if backend not in ALIGN_BACKENDS:
        raise ValueError(f"unknown align_backend {backend!r}")
    if backend != "auto":
        return backend
    est = _estimated_seconds(n_pairs, total_cells, n_jobs, n_devices)
    return min(est, key=est.get)


# ---------------------------------------------------------------------- #
# Graph construction
# ---------------------------------------------------------------------- #

def build_homology_graph(sequences: list[np.ndarray],
                         config: HomologyConfig | None = None,
                         matrix: np.ndarray = BLOSUM62,
                         keep_scores: bool = True,
                         device=None) -> HomologyResult:
    """Construct the similarity graph of a sequence set.

    Every candidate pair from the seed filter is aligned; pairs whose
    normalized Smith-Waterman score reaches the threshold become undirected
    edges.  ``config.align_backend`` selects the scoring backend (host /
    pool / device, or ``auto`` for the cost model); output is bit-identical
    across all of them.  With ``keep_scores=False`` only above-threshold
    edges are retained as shards complete, never the full score vector.

    ``device`` optionally supplies the :class:`repro.device.SimulatedDevice`
    (or :class:`repro.device.group.DeviceGroup`) the offload should run on
    (sharing its scratch pool, metrics and breakdown with other stages); by
    default the aligner brings its own, a group of ``config.devices``
    members when that exceeds one.  When the device backend is in play, the
    sequence upload starts on a copy thread *before* the seed filter, so
    the transfer overlaps candidate-pair discovery (the ``prefetch``
    execution-plan idea applied across pipeline stages).
    """
    config = config or HomologyConfig()
    timings = HomologyTimings()
    n = len(sequences)
    obs = get_obs()
    tracer = obs.tracer
    metrics = obs.metrics
    t_start = tracer.clock() if tracer.enabled else 0.0

    aligner = None
    uploader = None
    upload = None
    if config.align_backend in ("auto", "device"):
        # Deferred import: host-only runs never touch the device package.
        from repro.core.execplan import EXEC_PREFETCH, ExecutionPlan
        from repro.device.alignment import DeviceAligner

        if device is None and config.devices > 1:
            from repro.device.group import DeviceGroup

            device = DeviceGroup(config.devices)
        aligner = DeviceAligner(device,
                                plan=ExecutionPlan.from_mode(EXEC_PREFETCH))
        uploader = ThreadPoolExecutor(max_workers=1,
                                      thread_name_prefix="align-copy")
        upload = uploader.submit(aligner.upload_sequences, sequences)
    try:
        return _build_graph(sequences, config, matrix, keep_scores, aligner,
                            upload, timings, n, tracer, metrics, t_start)
    finally:
        if uploader is not None:
            uploader.shutdown(wait=True)
            if upload.exception() is None:
                aligner.release()


def _build_graph(sequences, config, matrix, keep_scores, aligner, upload,
                 timings, n, tracer, metrics, t_start) -> HomologyResult:
    with timed(tracer, "homology.seed_filter",
               filter=config.pair_filter) as stage:
        if config.pair_filter == "suffix":
            from repro.sequence.suffix import candidate_pairs_suffix

            pairs = candidate_pairs_suffix(
                sequences, min_match_len=config.min_match_len,
                max_run=config.max_kmer_occurrence)
        else:
            pairs = candidate_pairs(
                sequences, k=config.k, min_shared=config.min_shared_kmers,
                max_kmer_occurrence=config.max_kmer_occurrence)
        stage.set(n_pairs=int(pairs.shape[0]))
    timings.seed_filter_s = stage.elapsed

    n_pairs = int(pairs.shape[0])
    metrics.counter("homology.candidate_pairs").add(n_pairs)
    if n_pairs == 0:
        return HomologyResult(
            graph=CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64),
                                      n_vertices=n),
            n_candidate_pairs=0, n_edges=0,
            normalized_scores=np.zeros(0), pairs=pairs, timings=timings)

    # Self-scores, lazily: only sequences referenced by a candidate pair
    # are ever used as a denominator, so score just those in one batch.
    with timed(tracer, "homology.self_scores") as stage:
        refs = np.unique(pairs)
        selfs = np.zeros(n, dtype=np.int64)
        selfs[refs] = batch_self_scores([sequences[i] for i in refs], matrix)
        denom = np.minimum(selfs[pairs[:, 0]], selfs[pairs[:, 1]])
        stage.set(n_refs=int(refs.size))
    timings.self_scores_s = stage.elapsed

    n_jobs = _resolve_jobs(config.n_jobs)
    shards = _shard_bounds(n_pairs, config.chunk_size, n_jobs)
    lengths = np.fromiter((s.size for s in sequences), dtype=np.int64,
                          count=n)
    short_l, long_l = orient_pair_lengths(pairs, lengths)
    total_cells = int((short_l.astype(np.int64) * long_l).sum())
    n_devices = (aligner.group.n_devices
                 if aligner is not None and aligner.group is not None else 1)
    backend = choose_align_backend(config.align_backend, n_pairs,
                                   total_cells, config.n_jobs,
                                   n_devices=n_devices)
    if backend == "device" and aligner is None:
        raise ValueError(
            "align_backend resolved to 'device' without a device aligner")
    if backend == "pool" and (n_jobs <= 1 or len(shards) <= 1):
        backend = "host"

    score_blocks: list[np.ndarray] = []
    edge_blocks: list[np.ndarray] = []
    with timed(tracer, "homology.alignment", n_pairs=n_pairs,
               n_jobs=n_jobs, n_shards=len(shards),
               backend=backend) as stage:
        if backend == "device":
            upload.result()     # sequences resident (overlapped seed filter)
            scores = aligner.batch_scores(
                pairs, gap_model=config.gap_model, gap=config.gap,
                gap_open=config.gap_open, gap_extend=config.gap_extend)
            normalized = scores / np.maximum(denom, 1)
            keep = normalized >= config.min_normalized_score
            if keep_scores:
                score_blocks.append(normalized)
            edge_blocks.append(pairs[keep])
        elif backend == "pool":
            tasks = [(i, pairs[lo:hi], denom[lo:hi])
                     for i, (lo, hi) in enumerate(shards)]
            ctx = (multiprocessing.get_context("fork")
                   if "fork" in multiprocessing.get_all_start_methods()
                   else multiprocessing.get_context())
            with SequenceArena.pack(sequences) as arena:
                with ctx.Pool(processes=min(n_jobs, len(shards)),
                              initializer=_init_worker,
                              initargs=(arena.name, n, matrix, config,
                                        keep_scores,
                                        tracer.enabled)) as pool:
                    # imap preserves shard order: deterministic merge.
                    for block, kept_pairs, _, spans in pool.imap(
                            _score_shard_remote, tasks):
                        if spans:
                            tracer.absorb(spans)
                        if keep_scores:
                            score_blocks.append(block)
                        edge_blocks.append(kept_pairs)
        else:
            for i, (lo, hi) in enumerate(shards):
                with tracer.span("homology.align.shard", shard=i,
                                 n_pairs=hi - lo):
                    block, kept_pairs, _ = _score_shard(
                        sequences, pairs[lo:hi], denom[lo:hi], matrix,
                        config, keep_scores)
                if keep_scores:
                    score_blocks.append(block)
                edge_blocks.append(kept_pairs)
    timings.alignment_s = stage.elapsed
    observe_alignment_throughput(backend, total_cells, stage.elapsed)

    with timed(tracer, "homology.graph_build") as stage:
        edges = (np.concatenate(edge_blocks, axis=0) if edge_blocks
                 else np.empty((0, 2), dtype=np.int64))
        graph = CSRGraph.from_edges(edges, n_vertices=n)
        stage.set(n_edges=graph.n_edges)
    timings.graph_build_s = stage.elapsed

    metrics.counter("homology.edges_kept").add(graph.n_edges)
    metrics.counter("homology.pairs_dropped").add(n_pairs - graph.n_edges)
    if tracer.enabled:
        tracer.record("homology.build", t_start, tracer.clock(),
                      attrs={"n_sequences": n, "n_candidate_pairs": n_pairs,
                             "n_edges": graph.n_edges})

    if keep_scores:
        normalized = np.concatenate(score_blocks)
        pairs_out = pairs
    else:
        normalized = np.zeros(0)
        pairs_out = np.empty((0, 2), dtype=np.int64)
    return HomologyResult(
        graph=graph,
        n_candidate_pairs=n_pairs,
        n_edges=graph.n_edges,
        normalized_scores=normalized,
        pairs=pairs_out,
        timings=timings,
        align_backend=backend,
    )
