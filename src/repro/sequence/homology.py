"""Homology-graph construction: the end of the pGraph analogue.

Ties the sequence substrate together: k-mer candidate filtering, batched
Smith-Waterman on the surviving pairs, normalized-score thresholding, and
assembly of the undirected similarity graph the clustering stage consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sequence.kmer_filter import candidate_pairs
from repro.sequence.scoring import BLOSUM62
from repro.sequence.smith_waterman import batch_smith_waterman, self_score


@dataclass(frozen=True)
class HomologyConfig:
    """Parameters of the homology pipeline.

    Attributes
    ----------
    pair_filter:
        Candidate-pair heuristic: ``"kmer"`` (shared k-mer seeds) or
        ``"suffix"`` (generalized-suffix-array maximal exact matches — the
        mechanism pGraph's suffix trees implement).
    k / min_shared_kmers / max_kmer_occurrence:
        Seed filter settings (see :func:`candidate_pairs`), kmer mode.
    min_match_len:
        Minimum exact-match length, suffix mode.
    gap_model / gap / gap_open / gap_extend:
        ``"linear"`` (penalty ``gap`` per gapped residue) or ``"affine"``
        (BLAST-style ``gap_open + (L-1) * gap_extend``); both run the
        batched anti-diagonal aligner.
    min_normalized_score:
        A pair becomes an edge when ``sw / min(self_a, self_b)`` is at least
        this value.  Normalizing by the smaller self-score makes the
        threshold length-independent, the usual convention for fragment
        data.
    chunk_size:
        Alignment batch size.
    """

    pair_filter: str = "kmer"
    k: int = 5
    min_shared_kmers: int = 2
    max_kmer_occurrence: int = 200
    min_match_len: int = 8
    gap_model: str = "linear"
    gap: int = 8
    gap_open: int = 11
    gap_extend: int = 1
    min_normalized_score: float = 0.40
    chunk_size: int = 256

    def __post_init__(self) -> None:
        if self.pair_filter not in ("kmer", "suffix"):
            raise ValueError(f"unknown pair_filter {self.pair_filter!r}")
        if self.gap_model not in ("linear", "affine"):
            raise ValueError(f"unknown gap_model {self.gap_model!r}")
        if not 0.0 < self.min_normalized_score <= 1.0:
            raise ValueError("min_normalized_score must be in (0, 1]")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.min_match_len < 1:
            raise ValueError("min_match_len must be >= 1")


@dataclass
class HomologyResult:
    """The similarity graph plus pipeline statistics."""

    graph: CSRGraph
    n_candidate_pairs: int
    n_edges: int
    normalized_scores: np.ndarray = field(repr=False)
    pairs: np.ndarray = field(repr=False)


def build_homology_graph(sequences: list[np.ndarray],
                         config: HomologyConfig | None = None,
                         matrix: np.ndarray = BLOSUM62) -> HomologyResult:
    """Construct the similarity graph of a sequence set.

    Every candidate pair from the seed filter is aligned; pairs whose
    normalized Smith-Waterman score reaches the threshold become undirected
    edges.
    """
    config = config or HomologyConfig()
    n = len(sequences)
    if config.pair_filter == "suffix":
        from repro.sequence.suffix import candidate_pairs_suffix

        pairs = candidate_pairs_suffix(sequences,
                                       min_match_len=config.min_match_len,
                                       max_run=config.max_kmer_occurrence)
    else:
        pairs = candidate_pairs(sequences, k=config.k,
                                min_shared=config.min_shared_kmers,
                                max_kmer_occurrence=config.max_kmer_occurrence)
    if pairs.shape[0] == 0:
        return HomologyResult(
            graph=CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64),
                                      n_vertices=n),
            n_candidate_pairs=0, n_edges=0,
            normalized_scores=np.zeros(0), pairs=pairs)

    seqs_a = [sequences[i] for i in pairs[:, 0]]
    seqs_b = [sequences[j] for j in pairs[:, 1]]
    if config.gap_model == "affine":
        from repro.sequence.smith_waterman import batch_smith_waterman_affine

        scores = batch_smith_waterman_affine(
            seqs_a, seqs_b, matrix=matrix, gap_open=config.gap_open,
            gap_extend=config.gap_extend, chunk_size=config.chunk_size)
    else:
        scores = batch_smith_waterman(seqs_a, seqs_b, matrix=matrix,
                                      gap=config.gap,
                                      chunk_size=config.chunk_size)
    selfs = np.array([self_score(s, matrix) for s in sequences],
                     dtype=np.int64)
    denom = np.minimum(selfs[pairs[:, 0]], selfs[pairs[:, 1]])
    normalized = scores / np.maximum(denom, 1)

    keep = normalized >= config.min_normalized_score
    edges = pairs[keep]
    graph = CSRGraph.from_edges(edges, n_vertices=n)
    return HomologyResult(
        graph=graph,
        n_candidate_pairs=int(pairs.shape[0]),
        n_edges=graph.n_edges,
        normalized_scores=normalized,
        pairs=pairs,
    )
