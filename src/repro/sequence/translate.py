"""DNA handling: shotgun reads, six-frame translation, ORF extraction.

The paper's data pipeline starts before proteins: "the shotgun sequencing
approach shreds the DNA pool into millions of tiny 'fragments' ... The
resulting environmental sequence DNA data can be assembled, annotated for
genetic regions and subsequently translated into six frames to result in
Open Reading Frames (ORFs) or putative protein sequences." (Section I.)

This module implements that front end: DNA encoding, reverse complement,
the standard codon table, six-frame translation, and ORF calling (maximal
stop-free stretches above a length threshold), plus a shotgun-read
simulator so the examples can start from raw nucleotides.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import encode as encode_protein

DNA_ALPHABET = "ACGT"
_DNA_CODE = {ch: i for i, ch in enumerate(DNA_ALPHABET)}
_COMPLEMENT = {"A": "T", "C": "G", "G": "C", "T": "A"}

#: The standard genetic code; '*' marks stop codons.
CODON_TABLE = {
    "TTT": "F", "TTC": "F", "TTA": "L", "TTG": "L",
    "CTT": "L", "CTC": "L", "CTA": "L", "CTG": "L",
    "ATT": "I", "ATC": "I", "ATA": "I", "ATG": "M",
    "GTT": "V", "GTC": "V", "GTA": "V", "GTG": "V",
    "TCT": "S", "TCC": "S", "TCA": "S", "TCG": "S",
    "CCT": "P", "CCC": "P", "CCA": "P", "CCG": "P",
    "ACT": "T", "ACC": "T", "ACA": "T", "ACG": "T",
    "GCT": "A", "GCC": "A", "GCA": "A", "GCG": "A",
    "TAT": "Y", "TAC": "Y", "TAA": "*", "TAG": "*",
    "CAT": "H", "CAC": "H", "CAA": "Q", "CAG": "Q",
    "AAT": "N", "AAC": "N", "AAA": "K", "AAG": "K",
    "GAT": "D", "GAC": "D", "GAA": "E", "GAG": "E",
    "TGT": "C", "TGC": "C", "TGA": "*", "TGG": "W",
    "CGT": "R", "CGC": "R", "CGA": "R", "CGG": "R",
    "AGT": "S", "AGC": "S", "AGA": "R", "AGG": "R",
    "GGT": "G", "GGC": "G", "GGA": "G", "GGG": "G",
}


def reverse_complement(dna: str) -> str:
    """Reverse complement of a DNA string (unknown bases map to 'N')."""
    return "".join(_COMPLEMENT.get(ch, "N") for ch in reversed(dna.upper()))


def translate_frame(dna: str, frame: int = 0) -> str:
    """Translate one reading frame to protein (stops rendered as '*').

    Parameters
    ----------
    dna:
        Nucleotide string (A/C/G/T; anything else translates to 'X').
    frame:
        Offset 0, 1 or 2.
    """
    if frame not in (0, 1, 2):
        raise ValueError("frame must be 0, 1 or 2")
    dna = dna.upper()
    residues = []
    for i in range(frame, len(dna) - 2, 3):
        residues.append(CODON_TABLE.get(dna[i:i + 3], "X"))
    return "".join(residues)


def six_frame_translation(dna: str) -> list[str]:
    """All six reading frames: three forward, three reverse-complement."""
    rc = reverse_complement(dna)
    return ([translate_frame(dna, f) for f in range(3)]
            + [translate_frame(rc, f) for f in range(3)])


def extract_orfs(dna: str, min_length: int = 30) -> list[np.ndarray]:
    """Putative protein sequences from all six frames.

    An ORF here is a maximal stop-free stretch of at least ``min_length``
    residues in any frame (the permissive convention used for metagenomic
    fragments, which rarely contain complete genes with start codons).
    Returns integer-encoded protein sequences.
    """
    if min_length < 1:
        raise ValueError("min_length must be >= 1")
    orfs = []
    for protein in six_frame_translation(dna):
        for stretch in protein.split("*"):
            if len(stretch) >= min_length:
                orfs.append(encode_protein(stretch))
    return orfs


def reverse_translate(protein_codes: np.ndarray,
                      rng: np.random.Generator) -> str:
    """A DNA sequence that translates (frame 0) back to the given protein.

    Codon choice is uniform over the synonymous codons; used by the shotgun
    simulator to embed known proteins in synthetic DNA.
    """
    by_residue: dict[str, list[str]] = {}
    for codon, aa in CODON_TABLE.items():
        by_residue.setdefault(aa, []).append(codon)
    from repro.sequence.alphabet import decode

    out = []
    for aa in decode(np.asarray(protein_codes, dtype=np.uint8)):
        options = by_residue.get(aa)
        if not options:  # 'X' etc.
            options = by_residue["A"]
        out.append(options[int(rng.integers(len(options)))])
    return "".join(out)


def shotgun_reads(dna: str, n_reads: int, read_length: int,
                  rng: np.random.Generator,
                  error_rate: float = 0.0) -> list[str]:
    """Uniform random reads from a DNA pool, with optional base errors."""
    if read_length < 1:
        raise ValueError("read_length must be >= 1")
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be in [0, 1]")
    if len(dna) < read_length:
        raise ValueError("dna shorter than read length")
    reads = []
    for _ in range(n_reads):
        start = int(rng.integers(0, len(dna) - read_length + 1))
        read = list(dna[start:start + read_length])
        if error_rate:
            for i in range(len(read)):
                if rng.random() < error_rate:
                    read[i] = DNA_ALPHABET[int(rng.integers(4))]
        # Reads come off either strand with equal probability.
        seq = "".join(read)
        reads.append(seq if rng.random() < 0.5 else reverse_complement(seq))
    return reads
