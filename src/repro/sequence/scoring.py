"""Substitution scoring: the BLOSUM62 matrix.

Values are the standard half-bit BLOSUM62 scores (Henikoff & Henikoff 1992)
over the 20 amino acids in :data:`repro.sequence.alphabet.AMINO_ACIDS` order,
extended with an ``X`` row/column scoring -1 against everything (the common
convention for unknown residues).
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import ALPHABET_SIZE, AMINO_ACIDS

# Rows/cols in AMINO_ACIDS order: A R N D C Q E G H I L K M F P S T W Y V
_BLOSUM62_20 = [
    #  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0],  # A
    [ -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3],  # R
    [ -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3],  # N
    [ -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3],  # D
    [  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1],  # C
    [ -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2],  # Q
    [ -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2],  # E
    [  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3],  # G
    [ -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3],  # H
    [ -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3],  # I
    [ -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1],  # L
    [ -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2],  # K
    [ -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1],  # M
    [ -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1],  # F
    [ -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2],  # P
    [  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2],  # S
    [  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0],  # T
    [ -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3],  # W
    [ -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1],  # Y
    [  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4],  # V
]


def blosum62_matrix() -> np.ndarray:
    """The BLOSUM62 matrix extended with an X row/column (int16)."""
    m = np.full((ALPHABET_SIZE, ALPHABET_SIZE), -1, dtype=np.int16)
    base = np.asarray(_BLOSUM62_20, dtype=np.int16)
    if not np.array_equal(base, base.T):
        raise AssertionError("BLOSUM62 must be symmetric")
    m[: len(AMINO_ACIDS), : len(AMINO_ACIDS)] = base
    return m


#: Module-level singleton (read-only by convention).
BLOSUM62 = blosum62_matrix()
BLOSUM62.setflags(write=False)
