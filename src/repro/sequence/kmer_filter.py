"""k-mer seed filtering: the maximal-match candidate-pair heuristic.

pGraph avoids all-against-all alignment by "first identifying promising
pairs of sequences based on a maximal-matching heuristic (suffix trees are
used in our implementation)".  We stand in a k-mer seed index for the suffix
tree: two sequences become an alignment candidate when they share at least
``min_shared`` exact k-mers.  Same filtering effect (exact substring
agreement), much simpler machinery, fully vectorized.

The index is built loop-free: all sequences are concatenated once, every
window is packed in a single matrix product, windows crossing a sequence
boundary are masked out by owner comparison, and per-sequence duplicate
k-mer types plus the final shared-count threshold each collapse into one
sort (see :mod:`repro.sequence.pairs` for the group-to-pairs expansion).

High-frequency k-mers (low-complexity regions) are dropped, as every seeded
filter must, to avoid quadratic blowup on repeats.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import ALPHABET_SIZE
from repro.sequence.pairs import dedupe_count_pairs, expand_group_pairs


def _check_k(k: int) -> None:
    if k < 1:
        raise ValueError("k must be >= 1")
    if ALPHABET_SIZE ** k > 2**62:
        raise ValueError(f"k={k} too large to pack into int64")


def kmer_codes(seq: np.ndarray, k: int) -> np.ndarray:
    """All overlapping k-mers of a code sequence, packed into int64 values.

    Packing is positional base-``ALPHABET_SIZE``; k is limited so the packed
    value fits in int64 (k <= 14 for a 21-letter alphabet).
    """
    _check_k(k)
    seq = np.asarray(seq, dtype=np.int64)
    if seq.size < k:
        return np.empty(0, dtype=np.int64)
    # Sliding windows via stride trick on a cumulative polynomial encoding.
    weights = ALPHABET_SIZE ** np.arange(k, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(seq, k)
    return windows @ weights


def _concatenated_kmer_index(sequences: list[np.ndarray],
                             k: int) -> tuple[np.ndarray, np.ndarray]:
    """Distinct ``(kmer, owner)`` pairs over all sequences, one pass.

    Concatenates the set, packs every window with one matrix product, drops
    windows that straddle a sequence boundary (their first and last residue
    belong to different owners), and deduplicates per-sequence k-mer types
    with a single code-major lexsort.

    Returns ``(codes, owners)`` sorted by code then owner, duplicate-free.
    """
    lengths = np.array([s.size for s in sequences], dtype=np.int64)
    total = int(lengths.sum())
    if total < k:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    concat = np.concatenate(
        [np.asarray(s, dtype=np.int64) for s in sequences if s.size])
    owner_of_residue = np.repeat(
        np.arange(lengths.size, dtype=np.int64), lengths)

    weights = ALPHABET_SIZE ** np.arange(k, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(concat, k)
    codes = windows @ weights
    within = owner_of_residue[:codes.size] == owner_of_residue[k - 1:]
    codes = codes[within]
    owners = owner_of_residue[:within.size][within]

    order = np.lexsort((owners, codes))
    codes = codes[order]
    owners = owners[order]
    distinct = np.empty(codes.size, dtype=bool)
    distinct[:1] = True
    distinct[1:] = (codes[1:] != codes[:-1]) | (owners[1:] != owners[:-1])
    return codes[distinct], owners[distinct]


def candidate_pairs(sequences: list[np.ndarray], k: int = 5,
                    min_shared: int = 1,
                    max_kmer_occurrence: int = 200) -> np.ndarray:
    """Pairs of sequence indices sharing at least ``min_shared`` k-mers.

    Parameters
    ----------
    sequences:
        Integer-encoded sequences.
    k:
        Seed length; 4-6 is the useful protein range (5 gives ~4M possible
        seeds, so unrelated sequences of a few hundred residues rarely
        collide more than ``min_shared`` times).
    min_shared:
        Minimum number of distinct shared k-mer *types* to qualify.
    max_kmer_occurrence:
        Seeds present in more than this many sequences are skipped
        (low-complexity filter).

    Returns
    -------
    np.ndarray
        ``(m, 2)`` array of index pairs with ``i < j``, sorted.
    """
    _check_k(k)
    if min_shared < 1:
        raise ValueError("min_shared must be >= 1")
    if max_kmer_occurrence < 2:
        raise ValueError("max_kmer_occurrence must be >= 2")
    if not sequences:
        return np.empty((0, 2), dtype=np.int64)

    codes, owners = _concatenated_kmer_index(sequences, k)
    if codes.size == 0:
        return np.empty((0, 2), dtype=np.int64)

    # Seed groups: runs of equal code, owners already sorted within a run.
    starts = np.flatnonzero(np.r_[True, codes[1:] != codes[:-1]])
    sizes = np.diff(np.append(starts, codes.size))
    keep = (sizes >= 2) & (sizes <= max_kmer_occurrence)
    raw = expand_group_pairs(owners, starts[keep], sizes[keep])
    return dedupe_count_pairs(raw, len(sequences), min_count=min_shared)
