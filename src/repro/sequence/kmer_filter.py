"""k-mer seed filtering: the maximal-match candidate-pair heuristic.

pGraph avoids all-against-all alignment by "first identifying promising
pairs of sequences based on a maximal-matching heuristic (suffix trees are
used in our implementation)".  We stand in a k-mer seed index for the suffix
tree: two sequences become an alignment candidate when they share at least
``min_shared`` exact k-mers.  Same filtering effect (exact substring
agreement), much simpler machinery, fully vectorized.

High-frequency k-mers (low-complexity regions) are dropped, as every seeded
filter must, to avoid quadratic blowup on repeats.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import ALPHABET_SIZE


def kmer_codes(seq: np.ndarray, k: int) -> np.ndarray:
    """All overlapping k-mers of a code sequence, packed into int64 values.

    Packing is positional base-``ALPHABET_SIZE``; k is limited so the packed
    value fits in int64 (k <= 14 for a 21-letter alphabet).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if ALPHABET_SIZE ** k > 2**62:
        raise ValueError(f"k={k} too large to pack into int64")
    seq = np.asarray(seq, dtype=np.int64)
    if seq.size < k:
        return np.empty(0, dtype=np.int64)
    # Sliding windows via stride trick on a cumulative polynomial encoding.
    weights = ALPHABET_SIZE ** np.arange(k, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(seq, k)
    return windows @ weights


def candidate_pairs(sequences: list[np.ndarray], k: int = 5,
                    min_shared: int = 1,
                    max_kmer_occurrence: int = 200) -> np.ndarray:
    """Pairs of sequence indices sharing at least ``min_shared`` k-mers.

    Parameters
    ----------
    sequences:
        Integer-encoded sequences.
    k:
        Seed length; 4-6 is the useful protein range (5 gives ~4M possible
        seeds, so unrelated sequences of a few hundred residues rarely
        collide more than ``min_shared`` times).
    min_shared:
        Minimum number of distinct shared k-mer *types* to qualify.
    max_kmer_occurrence:
        Seeds present in more than this many sequences are skipped
        (low-complexity filter).

    Returns
    -------
    np.ndarray
        ``(m, 2)`` array of index pairs with ``i < j``, sorted.
    """
    if min_shared < 1:
        raise ValueError("min_shared must be >= 1")
    if max_kmer_occurrence < 2:
        raise ValueError("max_kmer_occurrence must be >= 2")

    all_kmers: list[np.ndarray] = []
    all_owners: list[np.ndarray] = []
    for i, seq in enumerate(sequences):
        codes = np.unique(kmer_codes(seq, k))  # distinct k-mer types per seq
        all_kmers.append(codes)
        all_owners.append(np.full(codes.size, i, dtype=np.int64))
    if not all_kmers:
        return np.empty((0, 2), dtype=np.int64)
    kmers = np.concatenate(all_kmers)
    owners = np.concatenate(all_owners)

    order = np.argsort(kmers, kind="stable")
    kmers = kmers[order]
    owners = owners[order]
    boundaries = np.flatnonzero(np.diff(kmers)) + 1
    groups = np.split(owners, boundaries)

    pair_chunks: list[np.ndarray] = []
    for group in groups:
        g = group.size
        if g < 2 or g > max_kmer_occurrence:
            continue
        members = np.sort(group)
        iu, ju = np.triu_indices(g, k=1)
        pair_chunks.append(np.stack([members[iu], members[ju]], axis=1))
    if not pair_chunks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(pair_chunks, axis=0)

    n = len(sequences)
    keys = pairs[:, 0] * np.int64(n) + pairs[:, 1]
    uniq, counts = np.unique(keys, return_counts=True)
    qualified = uniq[counts >= min_shared]
    out = np.stack([qualified // n, qualified % n], axis=1)
    return out
