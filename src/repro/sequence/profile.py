"""Sequence profiles (PSSMs) and profile-based family expansion.

The paper's benchmark families were not produced by sequence-sequence
matching: "those reported clusters were further expanded into predicted
protein families through profile-sequence and profile-profile matching
techniques ... sequence-sequence based matching is less sensitive comparing
to the profile-based matching techniques" (Section IV-D).  That expansion is
why both gpClust and GOS show high PPV but low sensitivity against the
benchmark — their clusters are "core sets" of profile-defined families.

This module implements the expansion stage: build a position-specific
scoring matrix (PSSM) from a cluster's members and recruit additional
sequences by profile-sequence alignment.  It completes the reproduction's
pipeline story end to end: shingling finds the cores, profiles grow them
into families.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequence.alphabet import ALPHABET_SIZE, AMINO_ACIDS
from repro.sequence.scoring import BLOSUM62
from repro.sequence.smith_waterman import sw_align

#: Uniform background residue frequency (simplification; real pipelines use
#: database frequencies).
_BACKGROUND = 1.0 / len(AMINO_ACIDS)


@dataclass
class Profile:
    """A PSSM over a reference coordinate system.

    ``scores[i, a]`` is the (half-bit, rounded) log-odds score of residue
    ``a`` at profile position ``i``.
    """

    scores: np.ndarray                 # (length, ALPHABET_SIZE) int32
    reference: np.ndarray              # the member used as coordinate frame
    n_members: int

    @property
    def length(self) -> int:
        return int(self.scores.shape[0])


def build_profile(members: list[np.ndarray], pseudocount: float = 1.0,
                  matrix: np.ndarray = BLOSUM62) -> Profile:
    """Build a PSSM from member sequences.

    Members are locally aligned to the longest member (the reference);
    per-reference-position residue counts plus pseudocounts give observed
    frequencies; the profile scores are rounded half-bit log-odds against a
    uniform background.  Reference positions never covered by any alignment
    fall back to the reference residue's BLOSUM row, so the profile degrades
    gracefully toward plain sequence search for singleton clusters.
    """
    if not members:
        raise ValueError("need at least one member sequence")
    if pseudocount <= 0:
        raise ValueError("pseudocount must be > 0")
    reference = max(members, key=len)
    length = len(reference)
    counts = np.zeros((length, len(AMINO_ACIDS)), dtype=np.float64)

    for member in members:
        if member is reference:
            counts[np.arange(length), reference] += 1.0
            continue
        _, path = sw_align(reference, member, matrix=matrix)
        for i_ref, j_mem in path:
            code = member[j_mem]
            if code < len(AMINO_ACIDS):
                counts[i_ref, code] += 1.0

    covered = counts.sum(axis=1) > 0
    freqs = ((counts + pseudocount * _BACKGROUND)
             / (counts.sum(axis=1, keepdims=True) + pseudocount))
    with np.errstate(divide="ignore"):
        logodds = 2.0 * np.log2(freqs / _BACKGROUND)
    scores = np.full((length, ALPHABET_SIZE), -1, dtype=np.int32)
    scores[:, :len(AMINO_ACIDS)] = np.round(logodds).astype(np.int32)
    # Uncovered positions: fall back to the reference residue's BLOSUM row.
    for i in np.flatnonzero(~covered):
        scores[i, :] = matrix[reference[i], :]
    return Profile(scores=scores, reference=np.asarray(reference),
                   n_members=len(members))


def profile_score(profile: Profile, seq: np.ndarray, gap: int = 8) -> int:
    """Smith-Waterman score of a sequence against a profile.

    Identical DP to sequence-sequence SW, with the substitution score at
    cell (i, j) read from the profile row ``i`` instead of a residue-pair
    matrix.
    """
    if gap < 0:
        raise ValueError("gap penalty must be >= 0")
    lp, ls = profile.length, len(seq)
    if lp == 0 or ls == 0:
        return 0
    prev = [0] * (ls + 1)
    best = 0
    rows = profile.scores.tolist()
    seq_l = np.asarray(seq).tolist()
    for i in range(1, lp + 1):
        row_scores = rows[i - 1]
        cur = [0] * (ls + 1)
        for j in range(1, ls + 1):
            h = prev[j - 1] + row_scores[seq_l[j - 1]]
            v = max(0, h, prev[j] - gap, cur[j - 1] - gap)
            cur[j] = v
            if v > best:
                best = v
        prev = cur
    return best


def profile_self_score(profile: Profile) -> int:
    """The profile's maximum attainable score (its consensus path)."""
    return int(profile.scores[:, :len(AMINO_ACIDS)].max(axis=1).clip(min=0).sum())


def expand_cluster(sequences: list[np.ndarray], core_ids: np.ndarray,
                   min_normalized_score: float = 0.35,
                   gap: int = 8) -> np.ndarray:
    """Profile-based family expansion of one cluster.

    Builds a profile from the core members and recruits every other
    sequence whose profile-sequence score reaches ``min_normalized_score``
    of the profile's self-score.  Returns the expanded member ids (core
    first, recruits appended, sorted within each part).
    """
    core_ids = np.asarray(core_ids, dtype=np.int64)
    if core_ids.size == 0:
        raise ValueError("need at least one core member")
    if not 0.0 < min_normalized_score <= 1.0:
        raise ValueError("min_normalized_score must be in (0, 1]")
    profile = build_profile([sequences[i] for i in core_ids])
    denom = max(profile_self_score(profile), 1)
    core_set = set(core_ids.tolist())
    recruits = []
    for i, seq in enumerate(sequences):
        if i in core_set:
            continue
        if profile_score(profile, seq, gap=gap) / denom >= min_normalized_score:
            recruits.append(i)
    return np.concatenate([np.sort(core_ids),
                           np.asarray(sorted(recruits), dtype=np.int64)])
