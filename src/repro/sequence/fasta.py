"""Minimal FASTA reading and writing.

Metagenomic ORF sets travel as FASTA; the examples and the end-to-end
pipeline read and write this format.  Sequences are kept as plain strings at
this layer (encoding to code arrays happens at alignment time).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator


def read_fasta(path: str | Path) -> list[tuple[str, str]]:
    """Read a FASTA file into ``[(header, sequence), ...]``.

    Headers lose their leading ``>``; sequence lines are concatenated and
    uppercased.  Blank lines are ignored.
    """
    records: list[tuple[str, str]] = []
    header: str | None = None
    chunks: list[str] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    records.append((header, "".join(chunks).upper()))
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise ValueError("FASTA file must start with a '>' header")
                chunks.append(line)
        if header is not None:
            records.append((header, "".join(chunks).upper()))
    return records


def write_fasta(records: Iterable[tuple[str, str]], path: str | Path,
                width: int = 70) -> None:
    """Write ``(header, sequence)`` records as FASTA with wrapped lines."""
    if width < 1:
        raise ValueError("width must be >= 1")
    with Path(path).open("w") as fh:
        for header, seq in records:
            fh.write(f">{header}\n")
            for lo in range(0, len(seq), width):
                fh.write(seq[lo:lo + width] + "\n")


def iter_fasta(path: str | Path) -> Iterator[tuple[str, str]]:
    """Streaming variant of :func:`read_fasta` (one record at a time)."""
    header: str | None = None
    chunks: list[str] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    yield header, "".join(chunks).upper()
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise ValueError("FASTA file must start with a '>' header")
                chunks.append(line)
        if header is not None:
            yield header, "".join(chunks).upper()
