"""Generalized suffix array: pGraph's maximal-exact-match pair filter.

pGraph identifies "promising pairs of sequences based on a maximal-matching
heuristic (suffix trees are used in our implementation to identify such
pairs [14])".  The modern equivalent of the suffix tree for this job is the
generalized suffix array + LCP array over the concatenated sequence set:
two sequences share an exact match of length >= L iff suffixes of theirs
appear within an LCP-``>= L`` run of the suffix array.

This module builds the arrays (prefix-doubling construction, O(n log^2 n)
with whole-array NumPy ops) and derives candidate pairs from LCP runs — an
alternative to the k-mer seed filter in :mod:`repro.sequence.kmer_filter`,
selectable through :class:`repro.sequence.homology.HomologyConfig`.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import ALPHABET_SIZE
from repro.sequence.pairs import dedupe_count_pairs, expand_group_pairs


def build_suffix_array(text: np.ndarray) -> np.ndarray:
    """Suffix array of an integer sequence via prefix doubling.

    Parameters
    ----------
    text:
        1-D array of nonnegative integer symbols.

    Returns
    -------
    np.ndarray
        ``sa`` such that ``text[sa[0]:] < text[sa[1]:] < ...``
        (shorter-prefix-first for ties, i.e. the suffix that runs out of
        symbols sorts first, as with a unique sentinel).
    """
    text = np.asarray(text, dtype=np.int64)
    n = text.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rank = np.asarray(np.unique(text, return_inverse=True)[1], dtype=np.int64)
    sa = np.argsort(rank, kind="stable")
    k = 1
    while k < n:
        # Sort by (rank[i], rank[i+k]) with -1 past the end.
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        order = np.lexsort((second, rank))
        sa = order
        # Recompute ranks: same pair -> same rank.
        pair_first = rank[sa]
        pair_second = second[sa]
        changed = np.ones(n, dtype=np.int64)
        changed[1:] = ((pair_first[1:] != pair_first[:-1])
                       | (pair_second[1:] != pair_second[:-1])).astype(np.int64)
        new_rank_sorted = np.cumsum(changed) - 1
        rank = np.empty(n, dtype=np.int64)
        rank[sa] = new_rank_sorted
        if int(new_rank_sorted[-1]) == n - 1:
            break
        k *= 2
    return sa


def build_lcp_array(text: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """LCP array via Kasai's algorithm: ``lcp[i] = LCP(sa[i-1], sa[i])``.

    ``lcp[0] == 0`` by convention.
    """
    text = np.asarray(text, dtype=np.int64)
    n = text.size
    lcp = np.zeros(n, dtype=np.int64)
    if n == 0:
        return lcp
    rank = np.empty(n, dtype=np.int64)
    rank[sa] = np.arange(n)
    text_l = text.tolist()
    sa_l = sa.tolist()
    rank_l = rank.tolist()
    h = 0
    for i in range(n):
        r = rank_l[i]
        if r > 0:
            j = sa_l[r - 1]
            while i + h < n and j + h < n and text_l[i + h] == text_l[j + h]:
                h += 1
            lcp[r] = h
            if h > 0:
                h -= 1
        else:
            h = 0
    return lcp


class GeneralizedSuffixArray:
    """Suffix array over a concatenated sequence set with unique separators.

    Each sequence is followed by a distinct separator symbol (above the
    alphabet range), so no match can run across sequence boundaries.
    """

    def __init__(self, sequences: list[np.ndarray]) -> None:
        self.n_sequences = len(sequences)
        parts = []
        owners = []
        offsets = []
        cursor = 0
        for i, seq in enumerate(sequences):
            seq = np.asarray(seq, dtype=np.int64)
            if seq.size and (seq.min() < 0 or seq.max() >= ALPHABET_SIZE):
                raise ValueError("sequence symbols must be alphabet codes")
            parts.append(seq)
            parts.append(np.array([ALPHABET_SIZE + i], dtype=np.int64))
            owners.append(np.full(seq.size + 1, i, dtype=np.int64))
            offsets.append(cursor)
            cursor += seq.size + 1
        self.text = (np.concatenate(parts) if parts
                     else np.empty(0, dtype=np.int64))
        self.owner = (np.concatenate(owners) if owners
                      else np.empty(0, dtype=np.int64))
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.sa = build_suffix_array(self.text)
        self.lcp = build_lcp_array(self.text, self.sa)

    def candidate_pairs(self, min_match_len: int,
                        max_run: int = 200) -> np.ndarray:
        """Sequence pairs sharing an exact match of ``>= min_match_len``.

        Finds maximal LCP-``>= min_match_len`` runs of the suffix array and
        pairs the distinct owner sequences within each run.  Runs with more
        than ``max_run`` distinct owners are skipped (low-complexity
        filter, the suffix-array analogue of the k-mer occurrence cap).

        Fully vectorized: runs come from one boolean diff, per-run distinct
        owners from one lexsort, and the triangle expansion plus the final
        cross-run dedup are shared with the k-mer filter
        (:mod:`repro.sequence.pairs`).

        Returns ``(m, 2)`` sorted unique index pairs with ``i < j``.
        """
        if min_match_len < 1:
            raise ValueError("min_match_len must be >= 1")
        owner_by_rank = self.owner[self.sa]
        qualifying = self.lcp >= min_match_len
        hits = np.flatnonzero(qualifying)
        if hits.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        # Runs of consecutive qualifying LCP entries at ranks
        # [s .. e] cover the suffixes sa[s-1 .. e] (lcp[i] relates rank i-1
        # to rank i, so the run of suffixes starts one rank earlier).
        breaks = np.flatnonzero(np.diff(hits) > 1)
        run_lo = hits[np.r_[0, breaks + 1]] - 1
        run_hi = hits[np.r_[breaks, hits.size - 1]]
        run_sizes = run_hi - run_lo + 1

        # Gather each run's owners and deduplicate per run with one sort.
        n_elems = int(run_sizes.sum())
        run_of_elem = np.repeat(np.arange(run_sizes.size, dtype=np.int64),
                                run_sizes)
        elem_start = np.repeat(np.cumsum(run_sizes) - run_sizes, run_sizes)
        rank = (np.arange(n_elems, dtype=np.int64) - elem_start
                + np.repeat(run_lo, run_sizes))
        owners = owner_by_rank[rank]
        order = np.lexsort((owners, run_of_elem))
        owners = owners[order]
        runs = run_of_elem[order]
        distinct = np.empty(n_elems, dtype=bool)
        distinct[:1] = True
        distinct[1:] = (runs[1:] != runs[:-1]) | (owners[1:] != owners[:-1])
        owners = owners[distinct]
        runs = runs[distinct]

        starts = np.flatnonzero(np.r_[True, runs[1:] != runs[:-1]])
        sizes = np.diff(np.append(starts, runs.size))
        keep = (sizes >= 2) & (sizes <= max_run)
        raw = expand_group_pairs(owners, starts[keep], sizes[keep])
        return dedupe_count_pairs(raw, self.n_sequences)


def candidate_pairs_suffix(sequences: list[np.ndarray],
                           min_match_len: int = 8,
                           max_run: int = 200) -> np.ndarray:
    """Convenience wrapper: maximal-match candidate pairs via suffix array."""
    if not sequences:
        return np.empty((0, 2), dtype=np.int64)
    gsa = GeneralizedSuffixArray(sequences)
    return gsa.candidate_pairs(min_match_len, max_run=max_run)
