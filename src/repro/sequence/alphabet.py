"""Amino-acid alphabet and integer encoding.

Sequences are stored as small integer arrays (uint8) indexing into the
20-letter amino-acid alphabet, which is what the vectorized aligner and the
substitution matrix want.  ``X`` (unknown residue) is a 21st symbol that
scores neutrally-negative against everything.
"""

from __future__ import annotations

import numpy as np

#: The 20 standard amino acids, in the conventional BLOSUM row order.
AMINO_ACIDS = "ARNDCQEGHILKMFPSTWYV"

#: Unknown residue.
UNKNOWN = "X"

ALPHABET = AMINO_ACIDS + UNKNOWN
ALPHABET_SIZE = len(ALPHABET)

_CHAR_TO_CODE = {ch: i for i, ch in enumerate(ALPHABET)}
# Build a 256-entry lookup for fast bytes -> code translation.
_LOOKUP = np.full(256, _CHAR_TO_CODE[UNKNOWN], dtype=np.uint8)
for _ch, _code in _CHAR_TO_CODE.items():
    _LOOKUP[ord(_ch)] = _code
    _LOOKUP[ord(_ch.lower())] = _code


def encode(sequence: str) -> np.ndarray:
    """Encode an amino-acid string as a uint8 code array.

    Unrecognized characters map to ``X`` (unknown).
    """
    raw = np.frombuffer(sequence.encode("ascii", errors="replace"), dtype=np.uint8)
    return _LOOKUP[raw]


def decode(codes: np.ndarray) -> str:
    """Decode a uint8 code array back to an amino-acid string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() >= ALPHABET_SIZE:
        raise ValueError(f"code out of range: max {codes.max()}")
    return "".join(ALPHABET[c] for c in codes.tolist())


def random_sequence(length: int, rng: np.random.Generator,
                    frequencies: np.ndarray | None = None) -> np.ndarray:
    """A random protein sequence of ``length`` residues (codes).

    Uses uniform residue frequencies unless given a 20-vector of
    probabilities.
    """
    if length < 0:
        raise ValueError("length must be >= 0")
    if frequencies is None:
        return rng.integers(0, len(AMINO_ACIDS), size=length).astype(np.uint8)
    frequencies = np.asarray(frequencies, dtype=np.float64)
    if frequencies.shape != (len(AMINO_ACIDS),):
        raise ValueError("frequencies must have one entry per amino acid")
    return rng.choice(len(AMINO_ACIDS), size=length, p=frequencies).astype(np.uint8)
