"""Smith-Waterman local alignment.

pGraph's homology detection performs "the optimality-guaranteeing
Smith-Waterman alignment algorithm [20] only on those identified pairs".
Three implementations, cross-validated by the test suite:

* :func:`sw_score_linear` — scalar reference, linear gap penalty;
* :func:`sw_score_affine` — scalar Gotoh, affine gaps (the richer model for
  users who want BLAST-like penalties);
* :func:`batch_smith_waterman` — the production path: anti-diagonal
  wavefront DP vectorized across a *batch* of pairs at once (the classic
  data-parallel SW formulation), linear gaps, scores only.  Bit-identical
  to :func:`sw_score_linear`.

All functions take integer-encoded sequences (see
:mod:`repro.sequence.alphabet`).
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import ALPHABET_SIZE
from repro.sequence.scoring import BLOSUM62

#: Internal padding code for batched alignment; scores hugely negative so
#: padded cells can never contribute to a local alignment.
_PAD = ALPHABET_SIZE
_PAD_SCORE = -(1 << 20)


def _extended_matrix(matrix: np.ndarray) -> np.ndarray:
    """Scoring matrix with an extra PAD row/column (int32)."""
    m = np.full((ALPHABET_SIZE + 1, ALPHABET_SIZE + 1), _PAD_SCORE, dtype=np.int32)
    m[:ALPHABET_SIZE, :ALPHABET_SIZE] = matrix.astype(np.int32)
    return m


def sw_score_linear(a: np.ndarray, b: np.ndarray,
                    matrix: np.ndarray = BLOSUM62, gap: int = 8) -> int:
    """Scalar Smith-Waterman score with linear gap penalty ``gap``."""
    if gap < 0:
        raise ValueError("gap penalty must be >= 0")
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0
    prev = [0] * (lb + 1)
    best = 0
    mat = matrix.tolist()
    b_list = b.tolist()
    for i in range(1, la + 1):
        row_scores = mat[a[i - 1]]
        cur = [0] * (lb + 1)
        for j in range(1, lb + 1):
            h = prev[j - 1] + row_scores[b_list[j - 1]]
            up = prev[j] - gap
            left = cur[j - 1] - gap
            v = h if h >= up else up
            if left > v:
                v = left
            if v < 0:
                v = 0
            cur[j] = v
            if v > best:
                best = v
        prev = cur
    return best


def sw_score_affine(a: np.ndarray, b: np.ndarray,
                    matrix: np.ndarray = BLOSUM62,
                    gap_open: int = 11, gap_extend: int = 1) -> int:
    """Scalar Gotoh Smith-Waterman with affine gaps (open+extend model).

    A gap of length L costs ``gap_open + (L - 1) * gap_extend``.
    """
    if gap_open < 0 or gap_extend < 0:
        raise ValueError("gap penalties must be >= 0")
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0
    neg = -(1 << 30)
    h_prev = [0] * (lb + 1)
    e_prev = [neg] * (lb + 1)
    best = 0
    mat = matrix.tolist()
    b_list = b.tolist()
    for i in range(1, la + 1):
        row_scores = mat[a[i - 1]]
        h_cur = [0] * (lb + 1)
        e_cur = [neg] * (lb + 1)
        f = neg
        for j in range(1, lb + 1):
            e_cur[j] = max(e_prev[j] - gap_extend, h_prev[j] - gap_open)
            f = max(f - gap_extend, h_cur[j - 1] - gap_open)
            v = max(0, h_prev[j - 1] + row_scores[b_list[j - 1]], e_cur[j], f)
            h_cur[j] = v
            if v > best:
                best = v
        h_prev, e_prev = h_cur, e_cur
    return best


def sw_score_banded(a: np.ndarray, b: np.ndarray, band: int,
                    matrix: np.ndarray = BLOSUM62, gap: int = 8) -> int:
    """Banded Smith-Waterman: only cells with ``|i - j| <= band`` computed.

    The standard shortcut for pairs expected to align near the diagonal
    (family members of similar length).  Cells outside the band are treated
    as zero, so the score is a lower bound on the full DP and equals it
    whenever the optimal path stays inside the band; widening the band can
    only increase the score.
    """
    if band < 0:
        raise ValueError("band must be >= 0")
    if gap < 0:
        raise ValueError("gap penalty must be >= 0")
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0
    prev = [0] * (lb + 1)
    best = 0
    mat = matrix.tolist()
    b_list = b.tolist()
    for i in range(1, la + 1):
        row_scores = mat[a[i - 1]]
        cur = [0] * (lb + 1)
        j_lo = max(1, i - band)
        j_hi = min(lb, i + band)
        for j in range(j_lo, j_hi + 1):
            h = prev[j - 1] + row_scores[b_list[j - 1]]
            v = max(0, h, prev[j] - gap, cur[j - 1] - gap)
            cur[j] = v
            if v > best:
                best = v
        prev = cur
    return best


def sw_align(a: np.ndarray, b: np.ndarray, matrix: np.ndarray = BLOSUM62,
             gap: int = 8) -> tuple[int, list[tuple[int, int]]]:
    """Smith-Waterman with traceback (linear gaps).

    Returns ``(score, path)`` where ``path`` is the list of aligned index
    pairs ``(i, j)`` (0-based, match/mismatch steps only; gap steps are the
    jumps between consecutive pairs).
    """
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0, []
    h = np.zeros((la + 1, lb + 1), dtype=np.int32)
    scores = matrix.astype(np.int32)[np.asarray(a)[:, None], np.asarray(b)[None, :]]
    for i in range(1, la + 1):
        row = h[i]
        prev = h[i - 1]
        for j in range(1, lb + 1):
            row[j] = max(0, prev[j - 1] + scores[i - 1, j - 1],
                         prev[j] - gap, row[j - 1] - gap)
    best_pos = np.unravel_index(np.argmax(h), h.shape)
    score = int(h[best_pos])
    path: list[tuple[int, int]] = []
    i, j = int(best_pos[0]), int(best_pos[1])
    while i > 0 and j > 0 and h[i, j] > 0:
        if h[i, j] == h[i - 1, j - 1] + scores[i - 1, j - 1]:
            path.append((i - 1, j - 1))
            i, j = i - 1, j - 1
        elif h[i, j] == h[i - 1, j] - gap:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return score, path


def self_score(seq: np.ndarray, matrix: np.ndarray = BLOSUM62) -> int:
    """Score of a sequence aligned to itself without gaps (the maximum
    attainable SW score), used to normalize pairwise scores."""
    seq = np.asarray(seq)
    if seq.size == 0:
        return 0
    return int(matrix[seq, seq].sum())


def batch_smith_waterman(seqs_a: list[np.ndarray], seqs_b: list[np.ndarray],
                         matrix: np.ndarray = BLOSUM62, gap: int = 8,
                         chunk_size: int = 256,
                         band: int | None = None) -> np.ndarray:
    """Scores of ``len(seqs_a)`` alignments, vectorized across pairs.

    Pairs are grouped into chunks; within a chunk, sequences are padded to
    the chunk maxima and the DP advances one anti-diagonal at a time with
    whole-chunk array operations — the standard wavefront parallelization
    of Smith-Waterman.

    With ``band`` set, only cells within ``band`` of the main diagonal are
    computed (see :func:`sw_score_banded`); otherwise equal elementwise to
    calling :func:`sw_score_linear` per pair.
    """
    if len(seqs_a) != len(seqs_b):
        raise ValueError("seqs_a and seqs_b must have equal length")
    if gap < 0:
        raise ValueError("gap penalty must be >= 0")
    if band is not None and band < 0:
        raise ValueError("band must be >= 0")
    n = len(seqs_a)
    out = np.zeros(n, dtype=np.int64)
    mat = _extended_matrix(matrix)
    # Process in length-sorted order so chunks have homogeneous padding.
    order = np.argsort([len(a) + len(b) for a, b in zip(seqs_a, seqs_b)],
                       kind="stable")
    for lo in range(0, n, chunk_size):
        idx = order[lo:lo + chunk_size]
        chunk_a = [np.asarray(seqs_a[i], dtype=np.uint8) for i in idx]
        chunk_b = [np.asarray(seqs_b[i], dtype=np.uint8) for i in idx]
        out[idx] = _chunk_scores(chunk_a, chunk_b, mat, gap, band=band)
    return out


def batch_smith_waterman_affine(seqs_a: list[np.ndarray],
                                seqs_b: list[np.ndarray],
                                matrix: np.ndarray = BLOSUM62,
                                gap_open: int = 11, gap_extend: int = 1,
                                chunk_size: int = 256) -> np.ndarray:
    """Affine-gap (Gotoh) scores, vectorized across pairs.

    The anti-diagonal wavefront generalizes to three DP matrices: ``H``
    (match state), ``E`` (gap in the first sequence, extended along ``j``)
    and ``F`` (gap in the second, extended along ``i``).  Bit-identical to
    :func:`sw_score_affine` per pair.
    """
    if len(seqs_a) != len(seqs_b):
        raise ValueError("seqs_a and seqs_b must have equal length")
    if gap_open < 0 or gap_extend < 0:
        raise ValueError("gap penalties must be >= 0")
    n = len(seqs_a)
    out = np.zeros(n, dtype=np.int64)
    mat = _extended_matrix(matrix)
    order = np.argsort([len(a) + len(b) for a, b in zip(seqs_a, seqs_b)],
                       kind="stable")
    for lo in range(0, n, chunk_size):
        idx = order[lo:lo + chunk_size]
        chunk_a = [np.asarray(seqs_a[i], dtype=np.uint8) for i in idx]
        chunk_b = [np.asarray(seqs_b[i], dtype=np.uint8) for i in idx]
        out[idx] = _chunk_scores_affine(chunk_a, chunk_b, mat,
                                        gap_open, gap_extend)
    return out


def _chunk_scores_affine(seqs_a: list[np.ndarray], seqs_b: list[np.ndarray],
                         mat: np.ndarray, gap_open: int,
                         gap_extend: int) -> np.ndarray:
    """Gotoh anti-diagonal DP over one padded chunk."""
    a = _pad_block(seqs_a)
    b = _pad_block(seqs_b)
    n_pairs, la = a.shape
    lb = b.shape[1]
    if n_pairs == 0:
        return np.zeros(0, dtype=np.int64)
    neg = np.int64(-(1 << 40))

    h_prev2 = np.zeros((n_pairs, la + 1), dtype=np.int64)
    h_prev1 = np.zeros((n_pairs, la + 1), dtype=np.int64)
    e_prev1 = np.full((n_pairs, la + 1), neg)   # E[i, j] = gap along j
    f_prev1 = np.full((n_pairs, la + 1), neg)   # F[i, j] = gap along i
    best = np.zeros(n_pairs, dtype=np.int64)

    for d in range(2, la + lb + 1):
        i_lo = max(1, d - lb)
        i_hi = min(la, d - 1)
        if i_lo > i_hi:
            # H=0 boundaries persist in the zero arrays; E/F boundaries stay
            # at -inf, matching the scalar recurrence's borders.
            h_prev2, h_prev1 = h_prev1, np.zeros_like(h_prev1)
            e_prev1 = np.full_like(e_prev1, neg)
            f_prev1 = np.full_like(f_prev1, neg)
            continue
        i_range = np.arange(i_lo, i_hi + 1)
        sub = mat[a[:, i_range - 1], b[:, d - i_range - 1]]
        # E[i, j] = max(E[i, j-1] - ext, H[i, j-1] - open): cell (i, j-1)
        # lives on diagonal d-1 at index i.
        e_cur = np.maximum(e_prev1[:, i_range] - gap_extend,
                           h_prev1[:, i_range] - gap_open)
        # F[i, j] = max(F[i-1, j] - ext, H[i-1, j] - open): cell (i-1, j)
        # lives on diagonal d-1 at index i-1.
        f_cur = np.maximum(f_prev1[:, i_range - 1] - gap_extend,
                           h_prev1[:, i_range - 1] - gap_open)
        diag = h_prev2[:, i_range - 1] + sub
        h_vals = np.maximum(np.maximum(diag, 0),
                            np.maximum(e_cur, f_cur))
        np.maximum(best, h_vals.max(axis=1), out=best)

        h_new = np.zeros((n_pairs, la + 1), dtype=np.int64)
        e_new = np.full((n_pairs, la + 1), neg)
        f_new = np.full((n_pairs, la + 1), neg)
        h_new[:, i_range] = h_vals
        e_new[:, i_range] = e_cur
        f_new[:, i_range] = f_cur
        h_prev2, h_prev1 = h_prev1, h_new
        e_prev1, f_prev1 = e_new, f_new
    return best


def _pad_block(seqs: list[np.ndarray]) -> np.ndarray:
    width = max((s.size for s in seqs), default=0)
    block = np.full((len(seqs), max(width, 1)), _PAD, dtype=np.int64)
    for r, s in enumerate(seqs):
        block[r, :s.size] = s
    return block


def _chunk_scores(seqs_a: list[np.ndarray], seqs_b: list[np.ndarray],
                  mat: np.ndarray, gap: int,
                  band: int | None = None) -> np.ndarray:
    """Anti-diagonal DP over one padded chunk; returns per-pair best scores."""
    a = _pad_block(seqs_a)          # (B, La)
    b = _pad_block(seqs_b)          # (B, Lb)
    n_pairs, la = a.shape
    lb = b.shape[1]
    if n_pairs == 0:
        return np.zeros(0, dtype=np.int64)

    # H diagonals indexed by i in [0, la]; H_d[:, i] == H[i, d - i].
    h_prev2 = np.zeros((n_pairs, la + 1), dtype=np.int64)   # diagonal d-2
    h_prev1 = np.zeros((n_pairs, la + 1), dtype=np.int64)   # diagonal d-1
    best = np.zeros(n_pairs, dtype=np.int64)

    for d in range(2, la + lb + 1):
        i_lo = max(1, d - lb)
        i_hi = min(la, d - 1)
        if band is not None:
            # |i - j| <= band with j = d - i  =>  (d - band)/2 <= i <= (d + band)/2
            i_lo = max(i_lo, -((band - d) // 2))   # ceil((d - band) / 2)
            i_hi = min(i_hi, (d + band) // 2)
        if i_lo > i_hi:
            # Nothing inside the band on this diagonal: its H values are all
            # zero, but the buffers must still rotate or later diagonals
            # would read stale predecessors.
            h_prev2, h_prev1 = h_prev1, np.zeros_like(h_prev1)
            continue
        i_range = np.arange(i_lo, i_hi + 1)
        sub = mat[a[:, i_range - 1], b[:, d - i_range - 1]]
        diag = h_prev2[:, i_range - 1] + sub
        up = h_prev1[:, i_range - 1] - gap     # from (i-1, j): gap in b
        left = h_prev1[:, i_range] - gap       # from (i, j-1): gap in a
        h_cur_vals = np.maximum(np.maximum(diag, up), np.maximum(left, 0))
        h_cur = np.zeros((n_pairs, la + 1), dtype=np.int64)
        h_cur[:, i_range] = h_cur_vals
        np.maximum(best, h_cur_vals.max(axis=1), out=best)
        h_prev2, h_prev1 = h_prev1, h_cur
    return best
