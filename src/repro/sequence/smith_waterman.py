"""Smith-Waterman local alignment.

pGraph's homology detection performs "the optimality-guaranteeing
Smith-Waterman alignment algorithm [20] only on those identified pairs".
Several implementations, cross-validated by the test suite:

* :func:`sw_score_linear` — scalar reference, linear gap penalty;
* :func:`sw_score_affine` — scalar Gotoh, affine gaps (the richer model for
  users who want BLAST-like penalties);
* :func:`batch_smith_waterman` / :func:`batch_smith_waterman_affine` — the
  production path: a *row-scan* DP vectorized across a batch of pairs at
  once.  Bit-identical to the scalar references.

The batched kernels used to advance one anti-diagonal at a time (the
classic wavefront parallelization).  They now advance one *row* at a time:
the sequential left-gap dependency ``H[i,j] = max(..., H[i,j-1] - gap)``
unrolls exactly into a max-plus prefix scan,

    ``H[i,j] = max_{k<=j} (T[i,k] - gap * (j - k))``
             ``= accmax_j (T[i,k] + gap*k) - gap*j``,

where ``T`` collects the non-left candidates (zero, diagonal, up), so each
row is a handful of whole-chunk vector operations including one
``np.maximum.accumulate``.  Compared to the wavefront this runs
``min(la, lb)`` long contiguous iterations instead of ``la + lb`` ragged
ones, and the DP state is held in the narrowest integer dtype the score
bounds allow (int16 where penalties and lengths permit, else int32/int64).
The affine (Gotoh) ``F`` recurrence folds into the same scan with step
``min(gap_open, gap_extend)`` — see :func:`_rowscan_affine`.

All functions take integer-encoded sequences (see
:mod:`repro.sequence.alphabet`).
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import ALPHABET_SIZE
from repro.sequence.scoring import BLOSUM62

#: Internal padding code for batched alignment; scores hugely negative so
#: padded cells can never contribute to a local alignment.
_PAD = ALPHABET_SIZE
_PAD_SCORE = -(1 << 20)

#: int16 DP is used when every intermediate fits these bounds.
_I16_SPAN = 28000
_I16_PAD_SCORE = -30000
_I16_NEG = -30000
_I16_MAX_PENALTY = 512


def _extended_matrix(matrix: np.ndarray) -> np.ndarray:
    """Scoring matrix with an extra PAD row/column (int32)."""
    m = np.full((ALPHABET_SIZE + 1, ALPHABET_SIZE + 1), _PAD_SCORE, dtype=np.int32)
    m[:ALPHABET_SIZE, :ALPHABET_SIZE] = matrix.astype(np.int32)
    return m


def sw_score_linear(a: np.ndarray, b: np.ndarray,
                    matrix: np.ndarray = BLOSUM62, gap: int = 8) -> int:
    """Scalar Smith-Waterman score with linear gap penalty ``gap``."""
    if gap < 0:
        raise ValueError("gap penalty must be >= 0")
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0
    prev = [0] * (lb + 1)
    best = 0
    mat = matrix.tolist()
    b_list = b.tolist()
    for i in range(1, la + 1):
        row_scores = mat[a[i - 1]]
        cur = [0] * (lb + 1)
        for j in range(1, lb + 1):
            h = prev[j - 1] + row_scores[b_list[j - 1]]
            up = prev[j] - gap
            left = cur[j - 1] - gap
            v = h if h >= up else up
            if left > v:
                v = left
            if v < 0:
                v = 0
            cur[j] = v
            if v > best:
                best = v
        prev = cur
    return best


def sw_score_affine(a: np.ndarray, b: np.ndarray,
                    matrix: np.ndarray = BLOSUM62,
                    gap_open: int = 11, gap_extend: int = 1) -> int:
    """Scalar Gotoh Smith-Waterman with affine gaps (open+extend model).

    A gap of length L costs ``gap_open + (L - 1) * gap_extend``.
    """
    if gap_open < 0 or gap_extend < 0:
        raise ValueError("gap penalties must be >= 0")
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0
    neg = -(1 << 30)
    h_prev = [0] * (lb + 1)
    e_prev = [neg] * (lb + 1)
    best = 0
    mat = matrix.tolist()
    b_list = b.tolist()
    for i in range(1, la + 1):
        row_scores = mat[a[i - 1]]
        h_cur = [0] * (lb + 1)
        e_cur = [neg] * (lb + 1)
        f = neg
        for j in range(1, lb + 1):
            e_cur[j] = max(e_prev[j] - gap_extend, h_prev[j] - gap_open)
            f = max(f - gap_extend, h_cur[j - 1] - gap_open)
            v = max(0, h_prev[j - 1] + row_scores[b_list[j - 1]], e_cur[j], f)
            h_cur[j] = v
            if v > best:
                best = v
        h_prev, e_prev = h_cur, e_cur
    return best


def sw_score_banded(a: np.ndarray, b: np.ndarray, band: int,
                    matrix: np.ndarray = BLOSUM62, gap: int = 8) -> int:
    """Banded Smith-Waterman: only cells with ``|i - j| <= band`` computed.

    The standard shortcut for pairs expected to align near the diagonal
    (family members of similar length).  Cells outside the band are treated
    as zero, so the score is a lower bound on the full DP and equals it
    whenever the optimal path stays inside the band; widening the band can
    only increase the score.
    """
    if band < 0:
        raise ValueError("band must be >= 0")
    if gap < 0:
        raise ValueError("gap penalty must be >= 0")
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0
    prev = [0] * (lb + 1)
    best = 0
    mat = matrix.tolist()
    b_list = b.tolist()
    for i in range(1, la + 1):
        row_scores = mat[a[i - 1]]
        cur = [0] * (lb + 1)
        j_lo = max(1, i - band)
        j_hi = min(lb, i + band)
        for j in range(j_lo, j_hi + 1):
            h = prev[j - 1] + row_scores[b_list[j - 1]]
            v = max(0, h, prev[j] - gap, cur[j - 1] - gap)
            cur[j] = v
            if v > best:
                best = v
        prev = cur
    return best


def sw_align(a: np.ndarray, b: np.ndarray, matrix: np.ndarray = BLOSUM62,
             gap: int = 8) -> tuple[int, list[tuple[int, int]]]:
    """Smith-Waterman with traceback (linear gaps).

    Returns ``(score, path)`` where ``path`` is the list of aligned index
    pairs ``(i, j)`` (0-based, match/mismatch steps only; gap steps are the
    jumps between consecutive pairs).
    """
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0, []
    h = np.zeros((la + 1, lb + 1), dtype=np.int32)
    scores = matrix.astype(np.int32)[np.asarray(a)[:, None], np.asarray(b)[None, :]]
    for i in range(1, la + 1):
        row = h[i]
        prev = h[i - 1]
        for j in range(1, lb + 1):
            row[j] = max(0, prev[j - 1] + scores[i - 1, j - 1],
                         prev[j] - gap, row[j - 1] - gap)
    best_pos = np.unravel_index(np.argmax(h), h.shape)
    score = int(h[best_pos])
    path: list[tuple[int, int]] = []
    i, j = int(best_pos[0]), int(best_pos[1])
    while i > 0 and j > 0 and h[i, j] > 0:
        if h[i, j] == h[i - 1, j - 1] + scores[i - 1, j - 1]:
            path.append((i - 1, j - 1))
            i, j = i - 1, j - 1
        elif h[i, j] == h[i - 1, j] - gap:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return score, path


def self_score(seq: np.ndarray, matrix: np.ndarray = BLOSUM62) -> int:
    """Score of a sequence aligned to itself without gaps (the maximum
    attainable SW score), used to normalize pairwise scores."""
    seq = np.asarray(seq)
    if seq.size == 0:
        return 0
    return int(matrix[seq, seq].sum())


def batch_self_scores(sequences: list[np.ndarray],
                      matrix: np.ndarray = BLOSUM62,
                      block_size: int = 1024) -> np.ndarray:
    """Self-scores of many sequences, vectorized over padded blocks.

    Equal elementwise to calling :func:`self_score` per sequence; sequences
    are padded to the block maximum with a symbol whose diagonal score is
    zero, so padding never contributes.
    """
    n = len(sequences)
    out = np.empty(n, dtype=np.int64)
    diag = np.zeros(ALPHABET_SIZE + 1, dtype=np.int64)
    diag[:ALPHABET_SIZE] = matrix.diagonal().astype(np.int64)
    for lo in range(0, n, block_size):
        chunk = sequences[lo:lo + block_size]
        block = _pad_block([np.asarray(s) for s in chunk])
        out[lo:lo + len(chunk)] = diag[block].sum(axis=1)
    return out


# --------------------------------------------------------------------- #
# Batched row-scan kernels
# --------------------------------------------------------------------- #

def _pad_block(seqs: list[np.ndarray]) -> np.ndarray:
    width = max((s.size for s in seqs), default=0)
    block = np.full((len(seqs), max(width, 1)), _PAD, dtype=np.int64)
    for r, s in enumerate(seqs):
        block[r, :s.size] = s
    return block


def _dp_dtype(max_short: int, max_long: int, matrix: np.ndarray,
              penalties: tuple[int, ...]) -> np.dtype:
    """Narrowest integer dtype whose range covers every DP intermediate.

    The SW score is bounded by ``matrix.max() * min(la, lb)`` (at most one
    match step per residue of the shorter sequence); the prefix scans add at
    most ``penalty * (lb - 1)`` on top.
    """
    smax = max(int(matrix.max()), 0) * max_short
    worst = max(penalties, default=0)
    span = smax + worst * (max_long + 1)
    if span < _I16_SPAN and all(p <= _I16_MAX_PENALTY for p in penalties):
        return np.dtype(np.int16)
    if span < (1 << 30):
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def dp_dtype(max_short: int, max_long: int, matrix: np.ndarray,
             penalties: tuple[int, ...]) -> np.dtype:
    """Public view of the DP dtype rule, shared with the device aligner.

    The device bin planner keys its dtype-homogeneous length bins on this
    exact function so host and device paths escalate int16 -> int32 -> int64
    at identical geometries (a precondition of bit-identity testing).
    """
    return _dp_dtype(max_short, max_long, matrix, penalties)


def orient_pair_lengths(pairs: np.ndarray,
                        lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair (short, long) sequence lengths, vectorized.

    The array sibling of :func:`_swap_short_long` for planners that only
    need geometry: ``pairs`` is ``(n, 2)`` sequence-id rows, ``lengths``
    the per-sequence length table.
    """
    la = lengths[pairs[:, 0]]
    lb = lengths[pairs[:, 1]]
    return np.minimum(la, lb), np.maximum(la, lb)


def _score_matrix(matrix: np.ndarray, dtype: np.dtype) -> np.ndarray:
    pad = _I16_PAD_SCORE if dtype == np.int16 else _PAD_SCORE
    m = np.full((ALPHABET_SIZE + 1, ALPHABET_SIZE + 1), pad, dtype=dtype)
    m[:ALPHABET_SIZE, :ALPHABET_SIZE] = matrix.astype(dtype)
    return m


def _swap_short_long(seqs_a: list[np.ndarray], seqs_b: list[np.ndarray],
                     ) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Orient each pair so the first sequence is the shorter one.

    SW scores are symmetric, and the row-scan kernel loops over rows of the
    shorter sequence while vectorizing along the longer, so this minimizes
    Python-level iterations per chunk.
    """
    short = [x if x.size <= y.size else y for x, y in zip(seqs_a, seqs_b)]
    long_ = [y if x.size <= y.size else x for x, y in zip(seqs_a, seqs_b)]
    return short, long_


def _prefix_max_axis0(x: np.ndarray) -> None:
    """In-place running maximum down axis 0, by repeated doubling.

    Equivalent to ``np.maximum.accumulate(x, axis=0, out=x)`` but built
    from whole-array maximums over contiguous slabs — ``log2(rows)`` SIMD
    passes instead of a strided scalar scan.  Reading already-updated rows
    is harmless: max is idempotent and monotone, so early propagation can
    only reach the same fixed point.
    """
    n = x.shape[0]
    k = 1
    while k < n:
        np.maximum(x[k:], x[:-k], out=x[k:])
        k <<= 1


def _gather_blocks(seqs_short: list[np.ndarray],
                   seqs_long: list[np.ndarray], mat: np.ndarray):
    """Chunk tensors for the transposed row scan.

    Returns ``(arow, bt, mat_flat)`` where ``arow[i]`` holds the short
    sequences' row-``i`` symbols pre-scaled to row offsets into the
    flattened score matrix, and ``bt`` is the long block transposed to
    ``(Lb, B)`` so every DP array is contiguous along the scan axis.
    """
    a = _pad_block(seqs_short)          # (B, La) — row loop
    b = _pad_block(seqs_long)           # (B, Lb) — vector width
    arow = np.ascontiguousarray((a * mat.shape[1]).T.astype(np.intp))
    bt = np.ascontiguousarray(b.T.astype(np.intp))
    return arow, bt, mat.ravel()


def _rowscan_linear(seqs_short: list[np.ndarray], seqs_long: list[np.ndarray],
                    matrix: np.ndarray, gap: int) -> np.ndarray:
    """Row-scan linear-gap DP over one padded chunk; per-pair best scores.

    All DP state lives transposed as ``(Lb, B)`` so the left-chain prefix
    max runs down contiguous memory, and substitution scores come from one
    flat ``take`` per row.
    """
    n_pairs = len(seqs_short)
    if n_pairs == 0:
        return np.zeros(0, dtype=np.int64)
    la = max(s.size for s in seqs_short)
    dtype = _dp_dtype(la, max(s.size for s in seqs_long), matrix, (gap,))
    mat = _score_matrix(matrix, dtype)
    arow, bt, mat_flat = _gather_blocks(seqs_short, seqs_long, mat)
    lb = bt.shape[0]
    ramp = (np.arange(lb) * gap).astype(dtype)[:, None]

    h_prev = np.zeros((lb, n_pairs), dtype=dtype)
    hmax = np.zeros((lb, n_pairs), dtype=dtype)
    shifted = np.zeros((lb, n_pairs), dtype=dtype)
    tmp = np.empty((lb, n_pairs), dtype=dtype)
    up = np.empty((lb, n_pairs), dtype=dtype)
    idx = np.empty((lb, n_pairs), dtype=np.intp)
    sub = np.empty((lb, n_pairs), dtype=dtype)
    for i in range(la):
        np.add(bt, arow[i][None, :], out=idx)
        np.take(mat_flat, idx, out=sub)
        shifted[1:] = h_prev[:-1]
        np.add(shifted, sub, out=tmp)                 # diagonal candidate
        np.subtract(h_prev, dtype.type(gap), out=up)  # up candidate
        np.maximum(tmp, up, out=tmp)
        np.maximum(tmp, dtype.type(0), out=tmp)       # T[i, :]
        np.maximum(hmax, tmp, out=hmax)
        # Left-chain scan: H[i,j] = accmax_j(T + gap*j) - gap*j.
        np.add(tmp, ramp, out=tmp)
        _prefix_max_axis0(tmp)
        np.subtract(tmp, ramp, out=h_prev)
    return hmax.max(axis=0).astype(np.int64)


def _rowscan_affine(seqs_short: list[np.ndarray], seqs_long: list[np.ndarray],
                    matrix: np.ndarray, gap_open: int,
                    gap_extend: int) -> np.ndarray:
    """Row-scan Gotoh DP over one padded chunk; per-pair best scores.

    ``E`` (gap in the long sequence) is elementwise per row.  ``F`` (gap in
    the short sequence) unrolls into the same max-plus prefix scan as the
    linear left chain: expanding ``F[j] = max(F[j-1]-e, H[j-1]-o)`` with
    ``H[j-1] = max(T[j-1], F[j-1])`` gives ``F[j] = max(T[j-1]-o,
    F[j-1]-min(e,o))``, hence ``F[j] = max_{k<j} (T[k] - o - min(e,o) *
    (j-1-k))`` exactly, for either ordering of the two penalties.

    Layout matches :func:`_rowscan_linear`: state is ``(Lb, B)`` so the F
    scan runs down contiguous memory.
    """
    n_pairs = len(seqs_short)
    if n_pairs == 0:
        return np.zeros(0, dtype=np.int64)
    la = max(s.size for s in seqs_short)
    step = min(gap_open, gap_extend)
    dtype = _dp_dtype(la, max(s.size for s in seqs_long), matrix,
                      (gap_open, gap_extend))
    mat = _score_matrix(matrix, dtype)
    neg = dtype.type(_I16_NEG if dtype == np.int16 else -(1 << 26))
    arow, bt, mat_flat = _gather_blocks(seqs_short, seqs_long, mat)
    lb = bt.shape[0]
    ramp = (np.arange(lb) * step).astype(dtype)[:, None]

    h_prev = np.zeros((lb, n_pairs), dtype=dtype)
    e_row = np.full((lb, n_pairs), neg, dtype=dtype)
    hmax = np.zeros((lb, n_pairs), dtype=dtype)
    shifted = np.zeros((lb, n_pairs), dtype=dtype)
    tmp = np.empty((lb, n_pairs), dtype=dtype)
    scratch = np.empty((lb, n_pairs), dtype=dtype)
    idx = np.empty((lb, n_pairs), dtype=np.intp)
    sub = np.empty((lb, n_pairs), dtype=dtype)
    for i in range(la):
        np.add(bt, arow[i][None, :], out=idx)
        np.take(mat_flat, idx, out=sub)
        # E[i, :] = max(E[i-1, :] - extend, H[i-1, :] - open)
        np.subtract(e_row, dtype.type(gap_extend), out=e_row)
        np.subtract(h_prev, dtype.type(gap_open), out=scratch)
        np.maximum(e_row, scratch, out=e_row)
        shifted[1:] = h_prev[:-1]
        np.add(shifted, sub, out=tmp)
        np.maximum(tmp, e_row, out=tmp)
        np.maximum(tmp, dtype.type(0), out=tmp)       # T[i, :]
        np.maximum(hmax, tmp, out=hmax)
        # F scan, then H = max(T, F); F[0] never beats T[0] >= 0.
        np.add(tmp, ramp, out=scratch)
        _prefix_max_axis0(scratch)
        np.subtract(scratch, ramp, out=scratch)
        h_prev, tmp = tmp, h_prev
        h_prev[1:] = np.maximum(h_prev[1:],
                                scratch[:-1] - dtype.type(gap_open))
    return hmax.max(axis=0).astype(np.int64)


def _chunk_scores_banded(seqs_a: list[np.ndarray], seqs_b: list[np.ndarray],
                         mat: np.ndarray, gap: int, band: int) -> np.ndarray:
    """Anti-diagonal DP over one padded chunk, band-restricted.

    The legacy wavefront kernel, kept for the banded mode: the band windows
    break the left-chain scan invariant the row kernels rely on.
    """
    a = _pad_block(seqs_a)          # (B, La)
    b = _pad_block(seqs_b)          # (B, Lb)
    n_pairs, la = a.shape
    lb = b.shape[1]
    if n_pairs == 0:
        return np.zeros(0, dtype=np.int64)

    # H diagonals indexed by i in [0, la]; H_d[:, i] == H[i, d - i].
    h_prev2 = np.zeros((n_pairs, la + 1), dtype=np.int64)   # diagonal d-2
    h_prev1 = np.zeros((n_pairs, la + 1), dtype=np.int64)   # diagonal d-1
    best = np.zeros(n_pairs, dtype=np.int64)

    for d in range(2, la + lb + 1):
        i_lo = max(1, d - lb)
        i_hi = min(la, d - 1)
        # |i - j| <= band with j = d - i  =>  (d - band)/2 <= i <= (d + band)/2
        i_lo = max(i_lo, -((band - d) // 2))   # ceil((d - band) / 2)
        i_hi = min(i_hi, (d + band) // 2)
        if i_lo > i_hi:
            # Nothing inside the band on this diagonal: its H values are all
            # zero, but the buffers must still rotate or later diagonals
            # would read stale predecessors.
            h_prev2, h_prev1 = h_prev1, np.zeros_like(h_prev1)
            continue
        i_range = np.arange(i_lo, i_hi + 1)
        sub = mat[a[:, i_range - 1], b[:, d - i_range - 1]]
        diag = h_prev2[:, i_range - 1] + sub
        up = h_prev1[:, i_range - 1] - gap     # from (i-1, j): gap in b
        left = h_prev1[:, i_range] - gap       # from (i, j-1): gap in a
        h_cur_vals = np.maximum(np.maximum(diag, up), np.maximum(left, 0))
        h_cur = np.zeros((n_pairs, la + 1), dtype=np.int64)
        h_cur[:, i_range] = h_cur_vals
        np.maximum(best, h_cur_vals.max(axis=1), out=best)
        h_prev2, h_prev1 = h_prev1, h_cur
    return best


def _chunk_order(seqs_short: list[np.ndarray],
                 seqs_long: list[np.ndarray]) -> np.ndarray:
    """Length-sorted processing order so chunks pad homogeneously.

    Sorting by (long, short) length keeps both the vector width and the row
    count of each chunk tight around its members.
    """
    return np.lexsort(([s.size for s in seqs_short],
                       [s.size for s in seqs_long]))


def batch_smith_waterman(seqs_a: list[np.ndarray], seqs_b: list[np.ndarray],
                         matrix: np.ndarray = BLOSUM62, gap: int = 8,
                         chunk_size: int = 256,
                         band: int | None = None) -> np.ndarray:
    """Scores of ``len(seqs_a)`` alignments, vectorized across pairs.

    Pairs are grouped into length-sorted chunks; within a chunk the
    row-scan DP advances with whole-chunk array operations (see the module
    docstring).  Equal elementwise to calling :func:`sw_score_linear` per
    pair.

    With ``band`` set, only cells within ``band`` of the main diagonal are
    computed (see :func:`sw_score_banded`) via the legacy anti-diagonal
    kernel.
    """
    if len(seqs_a) != len(seqs_b):
        raise ValueError("seqs_a and seqs_b must have equal length")
    if gap < 0:
        raise ValueError("gap penalty must be >= 0")
    if band is not None and band < 0:
        raise ValueError("band must be >= 0")
    n = len(seqs_a)
    out = np.zeros(n, dtype=np.int64)
    if band is not None:
        mat = _extended_matrix(matrix)
        order = np.argsort([len(a) + len(b) for a, b in zip(seqs_a, seqs_b)],
                           kind="stable")
        for lo in range(0, n, chunk_size):
            idx = order[lo:lo + chunk_size]
            chunk_a = [np.asarray(seqs_a[i], dtype=np.uint8) for i in idx]
            chunk_b = [np.asarray(seqs_b[i], dtype=np.uint8) for i in idx]
            out[idx] = _chunk_scores_banded(chunk_a, chunk_b, mat, gap, band)
        return out
    short, long_ = _swap_short_long(
        [np.asarray(a, dtype=np.uint8) for a in seqs_a],
        [np.asarray(b, dtype=np.uint8) for b in seqs_b])
    order = _chunk_order(short, long_)
    for lo in range(0, n, chunk_size):
        idx = order[lo:lo + chunk_size]
        out[idx] = _rowscan_linear([short[i] for i in idx],
                                   [long_[i] for i in idx], matrix, gap)
    return out


def batch_smith_waterman_affine(seqs_a: list[np.ndarray],
                                seqs_b: list[np.ndarray],
                                matrix: np.ndarray = BLOSUM62,
                                gap_open: int = 11, gap_extend: int = 1,
                                chunk_size: int = 256) -> np.ndarray:
    """Affine-gap (Gotoh) scores, vectorized across pairs.

    Bit-identical to :func:`sw_score_affine` per pair; see
    :func:`_rowscan_affine` for how the three DP matrices collapse into one
    elementwise pass plus one prefix scan per row.
    """
    if len(seqs_a) != len(seqs_b):
        raise ValueError("seqs_a and seqs_b must have equal length")
    if gap_open < 0 or gap_extend < 0:
        raise ValueError("gap penalties must be >= 0")
    n = len(seqs_a)
    out = np.zeros(n, dtype=np.int64)
    short, long_ = _swap_short_long(
        [np.asarray(a, dtype=np.uint8) for a in seqs_a],
        [np.asarray(b, dtype=np.uint8) for b in seqs_b])
    order = _chunk_order(short, long_)
    for lo in range(0, n, chunk_size):
        idx = order[lo:lo + chunk_size]
        out[idx] = _rowscan_affine([short[i] for i in idx],
                                   [long_[i] for i in idx],
                                   matrix, gap_open, gap_extend)
    return out
