"""Graph substrate: CSR storage, union-find, components, statistics, I/O.

The Shingling pipeline consumes undirected similarity graphs in adjacency-list
(CSR) form and produces bipartite shingle graphs; both live here, along with
the connected-component and union-find machinery used by Phase III of the
algorithm and by the evaluation code.
"""

from repro.graph.bipartite import BipartiteCSR
from repro.graph.components import connected_components, largest_component_size
from repro.graph.csr import CSRGraph
from repro.graph.io import (
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
    timed_load,
)
from repro.graph.kcore import core_filter, core_numbers, k_core
from repro.graph.stats import GraphStats, compute_graph_stats
from repro.graph.unionfind import UnionFind
from repro.graph.weighted import WeightedCSRGraph

__all__ = [
    "BipartiteCSR",
    "CSRGraph",
    "GraphStats",
    "UnionFind",
    "WeightedCSRGraph",
    "core_filter",
    "core_numbers",
    "k_core",
    "compute_graph_stats",
    "connected_components",
    "largest_component_size",
    "load_edge_list",
    "load_npz",
    "save_edge_list",
    "save_npz",
    "timed_load",
]
