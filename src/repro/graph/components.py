"""Connected-component detection.

Used twice in the pipeline:

* **pClust preprocessing** — the paper's pipeline first breaks the input
  similarity graph into connected components so each can be clustered
  independently (Section I-A, "pClust").
* **Phase III** — dense subgraphs are reported per connected component of the
  second-level shingle graph ``G_II``.

Two interchangeable algorithms are provided and cross-validated by tests:

* ``method="label_propagation"`` — a vectorized Shiloach-Vishkin-style
  min-label hooking + pointer jumping loop.  This is the data-parallel
  formulation (O(log n) rounds of whole-array NumPy ops), matching the
  HPC idiom of keeping hot loops out of the interpreter.
* ``method="bfs"`` — a classic iterative BFS sweep, the straightforward
  serial reference.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def _cc_label_propagation(n: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Min-label hooking over an edge list; returns per-vertex labels."""
    labels = np.arange(n, dtype=np.int64)
    if src.size == 0:
        return labels
    while True:
        before = labels
        lo = np.minimum(labels[src], labels[dst])
        labels = labels.copy()
        np.minimum.at(labels, src, lo)
        np.minimum.at(labels, dst, lo)
        # Pointer jumping until labels are self-consistent.
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, before):
            break
    return labels


def _cc_bfs(graph: CSRGraph) -> np.ndarray:
    """Iterative BFS labeling; serial reference implementation."""
    n = graph.n_vertices
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    indptr, indices = graph.indptr, graph.indices
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = next_label
        frontier = [start]
        while frontier:
            new_frontier = []
            for u in frontier:
                for v in indices[indptr[u]:indptr[u + 1]].tolist():
                    if labels[v] < 0:
                        labels[v] = next_label
                        new_frontier.append(v)
            frontier = new_frontier
        next_label += 1
    return labels


def _canonicalize(labels: np.ndarray) -> np.ndarray:
    """Relabel components densely in order of first appearance."""
    seen: dict[int, int] = {}
    out = np.empty_like(labels)
    for i, lab in enumerate(labels.tolist()):
        if lab not in seen:
            seen[lab] = len(seen)
        out[i] = seen[lab]
    return out


def connected_components(graph: CSRGraph, method: str = "label_propagation",
                         device=None) -> np.ndarray:
    """Per-vertex component labels, dense in ``[0, n_components)``.

    Labels are canonical (order of first vertex appearance), so both methods
    return identical arrays for the same graph.  A ``device`` runs the
    label-propagation fixpoint as the device's ``cc_hook``/``cc_jump``
    kernels — the raw min-vertex labels are identical, so the canonical
    output is too.
    """
    if method == "bfs":
        return _cc_bfs(graph)
    if method == "label_propagation":
        edges = graph.edges()
        if device is not None:
            raw = device.connected_components(edges[:, 0], edges[:, 1],
                                              graph.n_vertices)
        else:
            raw = _cc_label_propagation(graph.n_vertices,
                                        edges[:, 0], edges[:, 1])
        return _canonicalize(raw)
    raise ValueError(f"unknown method {method!r}")


def bipartite_components(indptr: np.ndarray, indices: np.ndarray, n_right: int) -> tuple[np.ndarray, np.ndarray]:
    """Components of a bipartite left->right adjacency.

    Returns ``(left_labels, right_labels)`` where a left node and a right node
    share a label iff they are in the same connected component.  Labels are
    dense but *not* canonicalized (use for grouping only).  Isolated right
    nodes (never referenced) get their own singleton labels.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    n_left = indptr.size - 1
    # Model left node i as vertex i, right node j as vertex n_left + j.
    owner = np.repeat(np.arange(n_left, dtype=np.int64), np.diff(indptr))
    labels = _cc_label_propagation(n_left + n_right, owner, indices + n_left)
    return labels[:n_left], labels[n_left:]


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of each component given dense labels."""
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(labels)


def largest_component_size(graph: CSRGraph) -> int:
    """Size of the largest connected component (Table II's ``Largest CC``).

    Matches the paper's convention of measuring over non-singleton vertices
    implicitly: singletons are size-1 components and never the largest in any
    interesting graph.
    """
    labels = connected_components(graph)
    sizes = component_sizes(labels)
    return int(sizes.max()) if sizes.size else 0
