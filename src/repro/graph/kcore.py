"""k-core decomposition: optional dense-region prefilter.

Dense subgraphs of minimum internal degree ``d`` live inside the ``d``-core,
so peeling low-core vertices before shingling discards vertices that cannot
be in any sufficiently dense cluster — a classic preprocessing for dense
subgraph detection (and an ablation candidate: see
``benchmarks/test_ablation_params.py``'s companions).

Implementation: the standard peeling algorithm with a bucket queue,
O(n + m).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """Per-vertex core number (the largest k such that the vertex is in the
    k-core)."""
    n = graph.n_vertices
    degrees = graph.degrees().astype(np.int64)
    if n == 0:
        return degrees
    max_deg = int(degrees.max()) if n else 0

    # Bucket sort vertices by degree (Batagelj-Zaversnik layout).
    bin_starts = np.zeros(max_deg + 2, dtype=np.int64)
    counts = np.bincount(degrees, minlength=max_deg + 1)
    np.cumsum(counts, out=bin_starts[1:])
    pos = np.empty(n, dtype=np.int64)        # position of vertex in vert
    vert = np.empty(n, dtype=np.int64)       # vertices sorted by degree
    cursor = bin_starts[:-1].copy()
    for v in range(n):
        d = degrees[v]
        pos[v] = cursor[d]
        vert[cursor[d]] = v
        cursor[d] += 1

    core = degrees.copy()
    bin_ptr = bin_starts[:-1].copy()          # start of each degree bucket
    indptr, indices = graph.indptr, graph.indices
    pos_l = pos.tolist()
    vert_l = vert.tolist()
    core_l = core.tolist()
    bin_l = bin_ptr.tolist()

    for i in range(n):
        v = vert_l[i]
        dv = core_l[v]
        for u in indices[indptr[v]:indptr[v + 1]].tolist():
            du = core_l[u]
            if du > dv:
                # Move u to the front of its bucket, then shrink its degree.
                pu = pos_l[u]
                pw = bin_l[du]
                w = vert_l[pw]
                if u != w:
                    vert_l[pu], vert_l[pw] = w, u
                    pos_l[u], pos_l[w] = pw, pu
                bin_l[du] += 1
                core_l[u] = du - 1
    return np.asarray(core_l, dtype=np.int64)


def k_core(graph: CSRGraph, k: int) -> np.ndarray:
    """Vertex ids of the ``k``-core (maximal subgraph of min degree k)."""
    if k < 0:
        raise ValueError("k must be >= 0")
    return np.flatnonzero(core_numbers(graph) >= k)


def core_filter(graph: CSRGraph, k: int) -> CSRGraph:
    """The graph with all vertices outside the k-core isolated.

    Vertex ids are preserved (no relabeling), so shingle fingerprints over
    the filtered graph are comparable with the unfiltered run.
    """
    keep = np.zeros(graph.n_vertices, dtype=bool)
    keep[k_core(graph, k)] = True
    # Drop every arc with an endpoint outside the core.
    owner = np.repeat(np.arange(graph.n_vertices), graph.degrees())
    mask = keep[owner] & keep[graph.indices]
    lengths = np.bincount(owner[mask], minlength=graph.n_vertices)
    indptr = np.zeros(graph.n_vertices + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    return CSRGraph(indptr, graph.indices[mask], validate=False)
