"""Graph serialization with timed loads.

The gpClust framework's first step is "CPU loads graph from disk I/O into the
host memory" (Algorithm 2, line 9), and Table I reports Disk I/O as its own
column.  These helpers read/write graphs and report the wall time spent so
the pipeline can attribute it to the ``disk_io`` bucket.

Two formats:

* **edge list** — one ``u v`` pair per line, ``#``-prefixed header comments;
  human-readable, interoperable.
* **npz** — NumPy archive of the CSR arrays; the fast path for benchmarks.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph


def save_edge_list(graph: CSRGraph, path: str | Path, header: str | None = None) -> None:
    """Write unique undirected edges as text lines ``u v``."""
    path = Path(path)
    edges = graph.edges()
    with path.open("w") as fh:
        fh.write(f"# vertices {graph.n_vertices}\n")
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        # np.savetxt is substantially faster than a Python loop here.
        np.savetxt(fh, edges, fmt="%d %d")


def load_edge_list(path: str | Path) -> CSRGraph:
    """Read a graph written by :func:`save_edge_list`.

    The ``# vertices N`` header, when present, fixes the vertex count so
    trailing isolated vertices are preserved.
    """
    path = Path(path)
    n_vertices: int | None = None
    with path.open() as fh:
        first = fh.readline()
        if first.startswith("# vertices"):
            n_vertices = int(first.split()[2])
    import warnings

    with warnings.catch_warnings():
        # An empty edge list is legal (a graph of isolates); silence
        # loadtxt's no-data warning for that case.
        warnings.filterwarnings("ignore", message=".*input contained no data.*")
        data = np.loadtxt(path, dtype=np.int64, comments="#", ndmin=2)
    if data.size == 0:
        data = np.empty((0, 2), dtype=np.int64)
    return CSRGraph.from_edges(data, n_vertices=n_vertices)


def save_npz(graph: CSRGraph, path: str | Path) -> None:
    """Write the CSR arrays as a compressed NumPy archive."""
    np.savez_compressed(Path(path), indptr=graph.indptr, indices=graph.indices)


def load_npz(path: str | Path) -> CSRGraph:
    """Read a graph written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        return CSRGraph(data["indptr"], data["indices"], validate=False)


def save_binary_edges(graph: CSRGraph, path: str | Path,
                      chunk_edges: int = 1 << 20) -> None:
    """Write unique undirected edges as a flat little-endian int64 stream.

    The format is a raw ``(m, 2)`` int64 array preceded by an 16-byte
    header (magic + vertex count), written in chunks so graphs larger than
    memory could stream through.
    """
    path = Path(path)
    edges = graph.edges()
    with path.open("wb") as fh:
        fh.write(b"RPROEDG1")
        fh.write(np.int64(graph.n_vertices).tobytes())
        for lo in range(0, edges.shape[0], chunk_edges):
            fh.write(np.ascontiguousarray(
                edges[lo:lo + chunk_edges], dtype="<i8").tobytes())


def build_csr_from_binary(path: str | Path,
                          chunk_edges: int = 1 << 20) -> CSRGraph:
    """External-memory CSR construction from a binary edge stream.

    Two passes over the file with bounded memory — the standard out-of-core
    build the 640M-edge regime requires:

    1. stream the edges once, counting per-vertex degrees;
    2. allocate ``indptr``/``indices`` and stream again, scattering each
       arc into its slot.

    Peak memory is O(n + m_output) for the result plus one chunk; the edge
    list itself is never resident.
    """
    path = Path(path)

    def _stream():
        with path.open("rb") as fh:
            magic = fh.read(8)
            if magic != b"RPROEDG1":
                raise ValueError(f"{path} is not a binary edge file")
            n_vertices = int(np.frombuffer(fh.read(8), dtype="<i8")[0])
            while True:
                raw = fh.read(chunk_edges * 16)
                if not raw:
                    break
                yield n_vertices, np.frombuffer(raw, dtype="<i8").reshape(-1, 2)

    # Pass 1 — degrees.
    n_vertices = None
    counts = None
    for n, chunk in _stream():
        if counts is None:
            n_vertices = n
            counts = np.zeros(n, dtype=np.int64)
        counts += np.bincount(chunk[:, 0], minlength=n)
        counts += np.bincount(chunk[:, 1], minlength=n)
    if counts is None:
        with path.open("rb") as fh:
            fh.read(8)
            n_vertices = int(np.frombuffer(fh.read(8), dtype="<i8")[0])
        return CSRGraph(np.zeros(n_vertices + 1, dtype=np.int64),
                        np.empty(0, dtype=np.int64), validate=False)

    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    cursor = indptr[:-1].copy()

    # Pass 2 — scatter both arc directions.
    for _, chunk in _stream():
        for src, dst in ((chunk[:, 0], chunk[:, 1]),
                         (chunk[:, 1], chunk[:, 0])):
            order = np.argsort(src, kind="stable")
            s, t = src[order], dst[order]
            uniq, starts, seg_counts = np.unique(s, return_index=True,
                                                 return_counts=True)
            offsets = (np.arange(s.size)
                       - np.repeat(starts, seg_counts)
                       + cursor[s])
            indices[offsets] = t
            cursor[uniq] += seg_counts
    # Sort within each adjacency list (writers guarantee uniqueness):
    # one global stable lexsort by (owner, neighbor).
    owner = np.repeat(np.arange(n_vertices, dtype=np.int64), counts)
    order = np.lexsort((indices, owner))
    indices = indices[order]
    return CSRGraph(indptr, indices, validate=False)


def timed_load(path: str | Path) -> tuple[CSRGraph, float]:
    """Load a graph (format inferred from suffix) and report I/O seconds."""
    path = Path(path)
    t0 = time.perf_counter()
    if path.suffix == ".npz":
        graph = load_npz(path)
    else:
        graph = load_edge_list(path)
    return graph, time.perf_counter() - t0
