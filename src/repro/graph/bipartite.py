"""Bipartite graph in CSR form (left-side adjacency into a right universe).

Shingling produces bipartite graphs at two points (Figure 2 of the paper):

* ``G_I(S1, V')``  — first-level shingles on the left, each adjacent to the
  vertices that generated it;
* ``G_II(S2, S1')`` — second-level shingles on the left, each adjacent to the
  first-level shingles that generated it.

Only left-side adjacency is needed by the algorithm (the next pass shingles
the left lists; Phase III unions the right-side members per component), so we
store exactly that: an ``indptr``/``indices`` pair where ``indices`` are
right-side ids.
"""

from __future__ import annotations

import numpy as np


class BipartiteCSR:
    """Left-to-right adjacency of a bipartite graph, CSR layout."""

    __slots__ = ("indptr", "indices", "n_right")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, n_right: int,
                 validate: bool = True) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.n_right = int(n_right)
        if validate:
            self._validate()

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length >= 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if self.n_right < 0:
            raise ValueError("n_right must be >= 0")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.n_right:
                raise ValueError("right-side id out of range")

    @classmethod
    def from_lists(cls, lists: list[np.ndarray], n_right: int) -> "BipartiteCSR":
        """Build from per-left-node neighbor arrays."""
        indptr = np.zeros(len(lists) + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(a) for a in lists])
        indices = (np.concatenate([np.asarray(a, dtype=np.int64) for a in lists])
                   if lists else np.empty(0, dtype=np.int64))
        return cls(indptr, indices, n_right)

    @property
    def n_left(self) -> int:
        return self.indptr.size - 1

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def neighbors(self, left_id: int) -> np.ndarray:
        """Right-side neighbor ids of one left node (read-only view)."""
        return self.indices[self.indptr[left_id]:self.indptr[left_id + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def right_degrees(self) -> np.ndarray:
        """Occurrences of each right-side id across all left lists."""
        return np.bincount(self.indices, minlength=self.n_right)

    def transpose(self) -> "BipartiteCSR":
        """Right-to-left adjacency (sorted lists), as a new BipartiteCSR."""
        order = np.argsort(self.indices, kind="stable")
        owner = np.repeat(np.arange(self.n_left, dtype=np.int64), self.degrees())
        t_indices = owner[order]
        counts = np.bincount(self.indices, minlength=self.n_right)
        t_indptr = np.zeros(self.n_right + 1, dtype=np.int64)
        np.cumsum(counts, out=t_indptr[1:])
        return BipartiteCSR(t_indptr, t_indices, n_right=self.n_left, validate=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteCSR):
            return NotImplemented
        return (
            self.n_right == other.n_right
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __repr__(self) -> str:
        return (f"BipartiteCSR(n_left={self.n_left}, n_right={self.n_right}, "
                f"nnz={self.nnz})")
