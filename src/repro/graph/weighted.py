"""Weighted undirected graphs (edge-weighted CSR).

The paper restricts itself to unweighted inputs ("although information is
sometimes available to assign edge weights in this graph based on the degree
of pairwise relationship, the scope of this paper is restricted to
unweighted inputs").  This module supplies the data structure for the
weighted extension implemented in :mod:`repro.core.weighted`: the alignment
scores of the homology stage become sampling weights for the min-wise
permutations.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


class WeightedCSRGraph:
    """Undirected graph with positive per-edge weights, CSR layout.

    ``weights[k]`` belongs to arc ``indices[k]``; the two stored directions
    of an undirected edge carry the same weight.
    """

    __slots__ = ("csr", "weights")

    def __init__(self, csr: CSRGraph, weights: np.ndarray, validate: bool = True) -> None:
        self.csr = csr
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        if validate:
            self._validate()

    def _validate(self) -> None:
        if self.weights.shape != (self.csr.nnz,):
            raise ValueError(
                f"weights must align with arcs: {self.weights.shape} vs "
                f"({self.csr.nnz},)")
        if self.weights.size and not np.all(self.weights > 0):
            raise ValueError("edge weights must be strictly positive")

    @classmethod
    def from_weighted_edges(cls, edges: np.ndarray, weights: np.ndarray,
                            n_vertices: int | None = None) -> "WeightedCSRGraph":
        """Build from unique undirected edges with one weight each.

        Duplicate edges keep the maximum weight; self-loops are dropped.
        """
        edges = np.asarray(edges, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        if weights.shape != (edges.shape[0],):
            raise ValueError("one weight per edge required")
        if weights.size and not np.all(weights > 0):
            raise ValueError("edge weights must be strictly positive")
        if n_vertices is None:
            n_vertices = int(edges.max()) + 1 if edges.size else 0

        mask = edges[:, 0] != edges[:, 1]
        edges, weights = edges[mask], weights[mask]
        both = np.concatenate([edges, edges[:, ::-1]], axis=0)
        w_both = np.concatenate([weights, weights])
        if both.size:
            keys = both[:, 0] * np.int64(n_vertices) + both[:, 1]
            order = np.argsort(keys, kind="stable")
            keys, w_both = keys[order], w_both[order]
            # Per duplicate group keep the max weight.
            boundaries = np.flatnonzero(np.diff(keys)) + 1
            uniq_keys = keys[np.concatenate([[0], boundaries])] if keys.size else keys
            w_max = np.array([g.max() for g in np.split(w_both, boundaries)]) \
                if keys.size else w_both
            src = uniq_keys // n_vertices
            dst = uniq_keys % n_vertices
        else:
            src = dst = np.empty(0, dtype=np.int64)
            w_max = np.empty(0, dtype=np.float64)

        counts = np.bincount(src, minlength=n_vertices)
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        csr = CSRGraph(indptr, dst, validate=False)
        return cls(csr, w_max)

    @classmethod
    def uniform(cls, graph: CSRGraph, weight: float = 1.0) -> "WeightedCSRGraph":
        """Every edge carries the same weight (the unweighted special case)."""
        if weight <= 0:
            raise ValueError("weight must be > 0")
        return cls(graph, np.full(graph.nnz, weight))

    # ------------------------------------------------------------------ #

    @property
    def n_vertices(self) -> int:
        return self.csr.n_vertices

    @property
    def n_edges(self) -> int:
        return self.csr.n_edges

    @property
    def indptr(self) -> np.ndarray:
        return self.csr.indptr

    @property
    def indices(self) -> np.ndarray:
        return self.csr.indices

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbor ids, weights)`` of one vertex."""
        lo, hi = self.csr.indptr[v], self.csr.indptr[v + 1]
        return self.csr.indices[lo:hi], self.weights[lo:hi]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge (u, v); raises KeyError when absent."""
        nbrs, w = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        if i >= nbrs.size or nbrs[i] != v:
            raise KeyError(f"no edge ({u}, {v})")
        return float(w[i])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedCSRGraph):
            return NotImplemented
        return self.csr == other.csr and np.array_equal(self.weights, other.weights)

    def __repr__(self) -> str:
        return (f"WeightedCSRGraph(n_vertices={self.n_vertices}, "
                f"n_edges={self.n_edges})")
