"""Compressed sparse row (adjacency list) storage for undirected graphs.

The paper's input is "the input graph in an adjacency list format" — a
similarity graph ``G(V, E)`` where vertices are protein sequences and edges
mark significant pairwise similarity.  We store it as CSR: a flat ``indices``
array of neighbor ids partitioned by an ``indptr`` offsets array.  This is
exactly the contiguous layout the GPU path wants (batches of adjacency lists
in one continuous device buffer with boundary markers, Figure 4).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class CSRGraph:
    """Undirected graph in CSR adjacency-list form.

    Invariants (validated on construction):

    * ``indptr`` is nondecreasing, starts at 0, ends at ``len(indices)``.
    * Every neighbor id lies in ``[0, n_vertices)``.
    * Neighbor lists are sorted and duplicate-free.
    * The adjacency is symmetric (``v in Γ(u)`` iff ``u in Γ(v)``) and has no
      self-loops.  Symmetry validation is O(m log m) so it is optional.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, validate: bool = True,
                 check_symmetry: bool = False) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if validate:
            self._validate(check_symmetry=check_symmetry)

    def _validate(self, check_symmetry: bool) -> None:
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length >= 1")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != self.indices.size:
            raise ValueError(
                f"indptr must end at len(indices)={self.indices.size}, got {self.indptr[-1]}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        n = self.n_vertices
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= n:
                raise ValueError("neighbor id out of range")
        # sorted + dedup within each list: check via segment-wise diff
        if self.indices.size:
            starts = self.indptr[:-1]
            interior = np.ones(self.indices.size, dtype=bool)
            interior[starts[starts < self.indices.size]] = False
            diffs_ok = np.diff(self.indices) > 0
            if not np.all(diffs_ok[interior[1:]]):
                raise ValueError("neighbor lists must be sorted and duplicate-free")
            # no self-loops
            owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
            if np.any(owner == self.indices):
                raise ValueError("self-loops are not allowed")
            if check_symmetry:
                fwd = np.stack([owner, self.indices], axis=1)
                rev = np.stack([self.indices, owner], axis=1)
                fwd_v = fwd[np.lexsort((fwd[:, 1], fwd[:, 0]))]
                rev_v = rev[np.lexsort((rev[:, 1], rev[:, 0]))]
                if not np.array_equal(fwd_v, rev_v):
                    raise ValueError("adjacency is not symmetric")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, edges: np.ndarray | Iterable[tuple[int, int]], n_vertices: int | None = None) -> "CSRGraph":
        """Build an undirected CSR graph from an edge list.

        Edges are symmetrized, deduplicated, and self-loops dropped; vertex
        count defaults to ``max id + 1``.
        """
        edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                           dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        if edges.size and edges.min() < 0:
            raise ValueError("negative vertex id in edge list")
        if n_vertices is None:
            n_vertices = int(edges.max()) + 1 if edges.size else 0
        elif edges.size and edges.max() >= n_vertices:
            raise ValueError(f"edge endpoint {edges.max()} >= n_vertices {n_vertices}")

        # Drop self loops, symmetrize, dedup.
        mask = edges[:, 0] != edges[:, 1]
        edges = edges[mask]
        both = np.concatenate([edges, edges[:, ::-1]], axis=0)
        if both.size:
            keys = both[:, 0] * np.int64(n_vertices) + both[:, 1]
            uniq = np.unique(keys)
            src = uniq // n_vertices
            dst = uniq % n_vertices
        else:
            src = dst = np.empty(0, dtype=np.int64)

        counts = np.bincount(src, minlength=n_vertices)
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # uniq keys are already sorted by (src, dst), so dst is grouped+sorted.
        return cls(indptr, dst, validate=False)

    @classmethod
    def from_adjacency(cls, adjacency: Iterable[Iterable[int]]) -> "CSRGraph":
        """Build from per-vertex neighbor iterables (symmetry not enforced)."""
        lists = [np.asarray(sorted(set(a)), dtype=np.int64) for a in adjacency]
        indptr = np.zeros(len(lists) + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(a) for a in lists])
        indices = np.concatenate(lists) if lists else np.empty(0, dtype=np.int64)
        return cls(indptr, indices)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def n_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges (each stored twice in CSR)."""
        return int(self.indices.size) // 2

    @property
    def nnz(self) -> int:
        """Number of stored directed arcs (= 2 * n_edges)."""
        return int(self.indices.size)

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of ``Γ(v)`` (sorted neighbor ids)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """All vertex degrees as one array."""
        return np.diff(self.indptr)

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def edges(self) -> np.ndarray:
        """Unique undirected edges as an ``(m, 2)`` array with ``u < v``."""
        owner = np.repeat(np.arange(self.n_vertices, dtype=np.int64), self.degrees())
        mask = owner < self.indices
        return np.stack([owner[mask], self.indices[mask]], axis=1)

    def non_singleton_vertices(self) -> np.ndarray:
        """Ids of vertices with degree >= 1.

        The paper discards singleton vertices before clustering ("they will
        be ignored in the subsequent analysis as they do not affect the final
        result").
        """
        return np.flatnonzero(self.degrees() > 0)

    def subgraph(self, vertices: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on ``vertices``; returns (graph, old-id map)."""
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        remap = np.full(self.n_vertices, -1, dtype=np.int64)
        remap[vertices] = np.arange(vertices.size, dtype=np.int64)
        edges = self.edges()
        keep = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
        sub_edges = remap[edges[keep]]
        return CSRGraph.from_edges(sub_edges, n_vertices=vertices.size), vertices

    def __iter__(self) -> Iterator[np.ndarray]:
        for v in range(self.n_vertices):
            yield self.neighbors(v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self.indptr, other.indptr) and np.array_equal(
            self.indices, other.indices
        )

    def __repr__(self) -> str:
        return f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"
