"""Graph statistics for Table II of the paper.

Table II reports, for the 2M-sequence similarity graph: the number of
(non-singleton) vertices, the number of edges, the average vertex degree with
standard deviation, and the size of the largest connected component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import component_sizes, connected_components
from repro.graph.csr import CSRGraph
from repro.util.tables import format_count, format_mean_std, format_table


@dataclass(frozen=True)
class GraphStats:
    """Input-graph statistics matching Table II's columns."""

    n_vertices_total: int
    n_singletons: int
    n_vertices: int          # non-singleton vertices, as the paper counts them
    n_edges: int
    avg_degree: float
    std_degree: float
    largest_cc_size: int
    n_components: int        # among non-singleton vertices

    def table_row(self) -> list[str]:
        return [
            format_count(self.n_vertices),
            format_count(self.n_edges),
            format_mean_std(self.avg_degree, self.std_degree),
            format_count(self.largest_cc_size),
        ]

    def render(self, title: str = "Input graph statistics (Table II)") -> str:
        return format_table(
            ["# Vertices", "# Edges", "Avg. degree", "Largest CC size"],
            [self.table_row()],
            title=title,
        )


def compute_graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute Table II statistics over the non-singleton part of ``graph``.

    The paper ignores singleton vertices ("they do not affect the final
    result"); degree statistics and component counts follow that convention.
    """
    degrees = graph.degrees()
    non_singleton = degrees > 0
    ns_degrees = degrees[non_singleton]
    n_ns = int(non_singleton.sum())

    labels = connected_components(graph)
    sizes = component_sizes(labels)
    # Singletons form size-1 components; exclude them from the count of
    # meaningful components but they can never be the largest.
    n_components = int((sizes > 1).sum())
    largest = int(sizes.max()) if sizes.size else 0

    return GraphStats(
        n_vertices_total=graph.n_vertices,
        n_singletons=graph.n_vertices - n_ns,
        n_vertices=n_ns,
        n_edges=graph.n_edges,
        avg_degree=float(ns_degrees.mean()) if n_ns else 0.0,
        std_degree=float(ns_degrees.std()) if n_ns else 0.0,
        largest_cc_size=largest,
        n_components=n_components,
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)
