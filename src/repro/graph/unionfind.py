"""Disjoint-set (union-find) data structure.

Phase III of the Shingling algorithm (Section III-B, option 2) initializes a
union-find structure over all ``n`` input vertices and unions together the
vertices constituting the shingles of each connected component, producing a
strict partition.  This is the classic Tarjan structure [21 in the paper]:
union by size plus path compression gives effectively-constant amortized ops.

Two implementations are provided:

* :class:`UnionFind` — array-backed, scalar operations, used for streams of
  incremental unions.
* :func:`union_groups` — a vectorized bulk operation that unions every element
  of each group in one call, used on the device-produced shingle tables where
  groups arrive as flat segmented arrays.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint-set forest with union by size + path halving.

    Internals are plain Python lists: for the scalar one-at-a-time access
    pattern of union-find, list indexing is several times faster than NumPy
    scalar indexing (each ndarray scalar read allocates a NumPy scalar
    object).  Bulk vectorized unions live in :func:`union_groups` instead.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets currently."""
        return self._n_components

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return int(x)

    def union(self, x: int, y: int) -> int:
        """Merge the sets containing ``x`` and ``y``; return the new root."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._n_components -= 1
        return rx

    def connected(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def union_many(self, xs, ys) -> None:
        """Union corresponding pairs from two index sequences."""
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        if xs.shape != ys.shape:
            raise ValueError(f"shape mismatch: {xs.shape} vs {ys.shape}")
        for x, y in zip(xs.tolist(), ys.tolist()):
            self.union(x, y)

    def union_group(self, members) -> None:
        """Union all members of one group (chains each to the first)."""
        if isinstance(members, np.ndarray):
            members = members.tolist()
        if len(members) < 2:
            return
        first = int(members[0])
        union = self.union
        for other in members[1:]:
            union(first, other)

    def set_size(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return int(self._size[self.find(x)])

    def roots(self) -> np.ndarray:
        """Fully-compressed parent array: ``roots()[i]`` is i's representative."""
        parent = np.asarray(self._parent, dtype=np.int64)
        # Iterated pointer jumping compresses every chain to depth 1.
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        self._parent = parent.tolist()
        return parent

    def labels(self) -> np.ndarray:
        """Dense component labels in ``[0, n_components)``.

        Labels are assigned in order of first appearance, so they are
        deterministic for a deterministic union sequence.
        """
        roots = self.roots()
        _, labels = np.unique(roots, return_inverse=True)
        # np.unique orders by root id, which is first-appearance order for
        # union-by-size forests only coincidentally; re-rank by first index
        # for a stable, order-of-appearance labeling.
        order = np.full(labels.max() + 1 if labels.size else 0, -1, dtype=np.int64)
        next_label = 0
        out = np.empty_like(labels)
        for i, lab in enumerate(labels.tolist()):
            if order[lab] < 0:
                order[lab] = next_label
                next_label += 1
            out[i] = order[lab]
        return out


def union_groups(n: int, group_offsets: np.ndarray, group_members: np.ndarray) -> np.ndarray:
    """Vectorized bulk union of segmented groups; returns root labels.

    Parameters
    ----------
    n:
        Universe size.
    group_offsets:
        ``indptr``-style offsets (``len == n_groups + 1``) into
        ``group_members``.
    group_members:
        Flat member ids, each in ``[0, n)``.

    Returns
    -------
    np.ndarray
        ``roots`` array of length ``n`` where equal values mean same set.

    Notes
    -----
    This runs label propagation (Shiloach-Vishkin style min-label hooking)
    over the implicit star graph that links each group member to its group's
    first member, converging in ``O(log n)`` vectorized rounds — the kind of
    data-parallel formulation the GPU would use.
    """
    group_offsets = np.asarray(group_offsets, dtype=np.int64)
    group_members = np.asarray(group_members, dtype=np.int64)
    if group_offsets.ndim != 1 or group_offsets.size == 0:
        raise ValueError("group_offsets must be a non-empty 1-D indptr array")
    if group_offsets[0] != 0 or group_offsets[-1] != group_members.size:
        raise ValueError("group_offsets must start at 0 and end at len(group_members)")
    if group_members.size and (group_members.min() < 0 or group_members.max() >= n):
        raise ValueError("group member id out of range")

    if group_members.size == 0:
        return np.arange(n, dtype=np.int64)

    # Build star edges: every member <-> its group leader (first member).
    counts = np.diff(group_offsets)
    nonempty = counts > 0
    leaders = np.repeat(group_members[group_offsets[:-1][nonempty]], counts[nonempty])
    return union_edges(n, leaders, group_members)


def union_edges(n: int, src: np.ndarray, dst: np.ndarray,
                device=None) -> np.ndarray:
    """Min-label propagation over explicit edges; returns root labels.

    The engine behind :func:`union_groups` for callers that already hold an
    edge list.  Edges are deduplicated up front (labels are invariant under
    edge multiplicity, and the shingle tables repeat pairs heavily), then
    hooking + pointer jumping run to fixpoint.

    With a ``device`` (a :class:`~repro.device.device.SimulatedDevice` or
    :class:`~repro.device.group.DeviceGroup`), the fixpoint iteration runs
    as the device's ``cc_hook``/``cc_jump`` kernels instead of the host
    loop; the result is bit-identical (any fixpoint of min-label hooking is
    the unique min-vertex-per-component labeling).  Dedup stays on the host
    and is charged to the cpu bucket.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    labels = np.arange(n, dtype=np.int64)
    if src.size == 0:
        return labels
    if device is not None:
        from repro.util.timer import BUCKET_CPU
        with device.breakdown.timing(BUCKET_CPU):
            src, dst = _dedup_edges(n, src, dst)
        if src.size == 0:
            return labels
        return device.connected_components(src, dst, n)
    src, dst = _dedup_edges(n, src, dst)

    while True:
        # Hook: every endpoint adopts the min label across each edge.
        lo = np.minimum(labels[src], labels[dst])
        before = labels.copy()
        np.minimum.at(labels, src, lo)
        np.minimum.at(labels, dst, lo)
        # Pointer jumping: compress label chains.
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, before):
            break
    return labels


#: Bitmap-dedup ceiling: an n*n presence bitmap up to this many cells (64 MB
#: of bools) is cheaper than sorting tens of millions of edge keys.
_BITMAP_DEDUP_CELLS = 1 << 26


def _dedup_edges(n: int, src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Drop duplicate and self-loop star edges before label propagation.

    Resulting labels are invariant under edge multiplicity (hooking takes
    minima), but ``np.minimum.at`` is a buffered scatter whose cost is linear
    in the edge count *per propagation round* — and shingle tables repeat the
    same (leader, member) pair tens of times.  Small universes dedup through
    an ``n*n`` presence bitmap (one linear scatter + scan); larger ones sort
    packed 64-bit keys; degenerate inputs pass through unchanged.
    """
    if n * n <= _BITMAP_DEDUP_CELLS:
        seen = np.zeros(n * n, dtype=bool)
        seen[src * n + dst] = True
        keys = np.flatnonzero(seen)
        src, dst = keys // n, keys % n
    elif n <= (1 << 32) and src.size > 4 * n:
        keys = np.unique((src.astype(np.uint64) << np.uint64(32))
                         | dst.astype(np.uint64))
        src = (keys >> np.uint64(32)).astype(np.int64)
        dst = (keys & np.uint64(0xFFFFFFFF)).astype(np.int64)
    loops = src == dst
    if loops.any():
        keep = ~loops
        src, dst = src[keep], dst[keep]
    return src, dst
